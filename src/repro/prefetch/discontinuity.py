"""The discontinuity prefetcher (Spracklen et al., HPCA'05).

Records one non-sequential transition per source block: when a demand
miss at block ``B`` follows an access to block ``A`` with ``B != A+1``,
the table learns ``A -> B``.  On a later access to ``A``, the recorded
discontinuity target is prefetched alongside next lines.  Its lookahead
is structurally limited to a single transition (Section 6 of the paper),
which is the contrast PIF's unbounded stream-following draws against.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.lru import LRUCache
from .base import Prefetcher


class DiscontinuityPrefetcher(Prefetcher):
    """One-transition discontinuity table plus next-line assist."""

    def __init__(self, table_entries: int = 4 * 1024,
                 next_line_degree: int = 2) -> None:
        super().__init__()
        if table_entries <= 0:
            raise ValueError("table_entries must be positive")
        if next_line_degree < 0:
            raise ValueError("next_line_degree cannot be negative")
        self.name = "discontinuity"
        self.next_line_degree = next_line_degree
        self._table: LRUCache[int, int] = LRUCache(table_entries)
        self._previous_block: Optional[int] = None

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        out: List[int] = []
        self.on_demand_access_into(block, pc, trap_level, hit,
                                   was_prefetched, out)
        return out

    def on_demand_access_into(self, block: int, pc: int, trap_level: int,
                              hit: bool, was_prefetched: bool,
                              out: List[int]) -> int:
        previous = self._previous_block
        issued = 0
        if previous is not None and previous != block:
            if not hit and block != previous + 1:
                # Learn the discontinuity edge previous -> block.
                self._table.put(previous, block)
            target = self._table.get(block)
            self.stats.triggers += 1
            append = out.append
            for offset in range(1, self.next_line_degree + 1):
                append(block + offset)
            issued = self.next_line_degree
            if target is not None:
                append(target)
                append(target + 1)
                issued += 2
            self.stats.issued += issued
        self._previous_block = block
        return issued

    def reset(self) -> None:
        super().reset()
        self._table.clear()
        self._previous_block = None
