"""The prefetcher interface every engine (PIF and baselines) implements.

The trace simulator drives prefetchers through two hooks:

* :meth:`Prefetcher.on_demand_access` — every front-end L1-I request
  (correct- and wrong-path alike: hardware cannot tell them apart at
  fetch time), with the cache outcome.  Returns block addresses to
  prefetch *now*.
* :meth:`Prefetcher.on_retire` — every retired block-run record, with
  the PIF fetch-stage tag.  Only retire-order prefetchers (PIF) use it;
  the default is a no-op so fetch-side baselines ignore retirement.

The simulation hot loops drive the *buffer-reuse* variant of the access
hook, :meth:`Prefetcher.on_demand_access_into`: candidates are appended
to a caller-owned scratch list and the count is returned, so a
steady-state access that produces no prefetches allocates nothing.
Every in-repo engine implements ``on_demand_access_into`` natively and
derives ``on_demand_access`` from it; external subclasses may keep
implementing only ``on_demand_access`` — the base class bridges it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, List


@dataclass(slots=True)
class PrefetchStats:
    """Issue-side counters (fill-side counters live in CacheStats)."""

    issued: int = 0
    triggers: int = 0
    stream_allocations: int = 0

    def describe(self) -> dict:
        """Flat dictionary view."""
        return {
            "issued": float(self.issued),
            "triggers": float(self.triggers),
            "stream_allocations": float(self.stream_allocations),
        }


class Prefetcher(ABC):
    """Base class for instruction prefetch engines."""

    #: Short display name used in result tables.
    name: str = "base"

    def __init__(self) -> None:
        self.stats = PrefetchStats()

    @abstractmethod
    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        """Observe a demand access; return blocks to prefetch."""

    def on_demand_access_into(self, block: int, pc: int, trap_level: int,
                              hit: bool, was_prefetched: bool,
                              out: List[int]) -> int:
        """Observe a demand access; append prefetch candidates to ``out``.

        Returns the number of candidates appended.  The default bridges
        to :meth:`on_demand_access` so externally defined engines keep
        working; in-repo engines override this natively (and derive the
        list-returning hook from it) so the steady-state simulation loop
        issues zero allocations per access.
        """
        candidates = self.on_demand_access(block, pc, trap_level, hit,
                                           was_prefetched)
        out.extend(candidates)
        return len(candidates)

    def on_retire(self, pc: int, trap_level: int, tagged: bool) -> None:
        """Observe a retired block-run record (default: ignore)."""

    def reset(self) -> None:
        """Drop learned state and counters (fresh engine)."""
        self.stats = PrefetchStats()


class NullPrefetcher(Prefetcher):
    """The no-prefetch baseline every speedup is normalized against."""

    name = "none"

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        return []

    def on_demand_access_into(self, block: int, pc: int, trap_level: int,
                              hit: bool, was_prefetched: bool,
                              out: List[int]) -> int:
        return 0


def demand_access_hook(prefetcher: Prefetcher):
    """The buffer-reuse hook the simulation loops should drive
    ``prefetcher`` with, honouring the most-derived override.

    The in-repo engines implement ``on_demand_access_into`` natively, so
    a subclass that overrides only the list-returning
    ``on_demand_access`` (to filter or augment candidates, say) would be
    silently bypassed if the loops bound ``on_demand_access_into``
    directly — the inherited native hook never calls the override.
    This resolver compares where in the MRO each hook is defined: when
    the ``_into`` definition is at least as derived as the list-API
    definition it is authoritative and returned as-is; otherwise the
    subclass's list API wins and a bridging closure adapts it.
    """
    cls = type(prefetcher)

    def defining_class(name: str):
        for klass in cls.__mro__:
            if name in vars(klass):
                return klass
        return None

    list_owner = defining_class("on_demand_access")
    into_owner = defining_class("on_demand_access_into")
    if (into_owner is not None and list_owner is not None
            and issubclass(into_owner, list_owner)):
        return prefetcher.on_demand_access_into

    def bridge(block: int, pc: int, trap_level: int, hit: bool,
               was_prefetched: bool, out: List[int]) -> int:
        candidates = prefetcher.on_demand_access(block, pc, trap_level,
                                                 hit, was_prefetched)
        out.extend(candidates)
        return len(candidates)

    return bridge


def as_block_list(blocks: Iterable[int]) -> List[int]:
    """Deduplicate prefetch candidates preserving order.

    Engines frequently produce the same block twice in one response
    (e.g. a region's trigger block also appearing via next-line); the
    cache would filter it, but deduping here keeps issue counters
    meaningful.
    """
    seen = set()
    ordered: List[int] = []
    for block in blocks:
        if block not in seen:
            seen.add(block)
            ordered.append(block)
    return ordered
