"""The prefetcher interface every engine (PIF and baselines) implements.

The trace simulator drives prefetchers through two hooks:

* :meth:`Prefetcher.on_demand_access` — every front-end L1-I request
  (correct- and wrong-path alike: hardware cannot tell them apart at
  fetch time), with the cache outcome.  Returns block addresses to
  prefetch *now*.
* :meth:`Prefetcher.on_retire` — every retired block-run record, with
  the PIF fetch-stage tag.  Only retire-order prefetchers (PIF) use it;
  the default is a no-op so fetch-side baselines ignore retirement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, List


@dataclass(slots=True)
class PrefetchStats:
    """Issue-side counters (fill-side counters live in CacheStats)."""

    issued: int = 0
    triggers: int = 0
    stream_allocations: int = 0

    def describe(self) -> dict:
        """Flat dictionary view."""
        return {
            "issued": float(self.issued),
            "triggers": float(self.triggers),
            "stream_allocations": float(self.stream_allocations),
        }


class Prefetcher(ABC):
    """Base class for instruction prefetch engines."""

    #: Short display name used in result tables.
    name: str = "base"

    def __init__(self) -> None:
        self.stats = PrefetchStats()

    @abstractmethod
    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        """Observe a demand access; return blocks to prefetch."""

    def on_retire(self, pc: int, trap_level: int, tagged: bool) -> None:
        """Observe a retired block-run record (default: ignore)."""

    def reset(self) -> None:
        """Drop learned state and counters (fresh engine)."""
        self.stats = PrefetchStats()


class NullPrefetcher(Prefetcher):
    """The no-prefetch baseline every speedup is normalized against."""

    name = "none"

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        return []


def as_block_list(blocks: Iterable[int]) -> List[int]:
    """Deduplicate prefetch candidates preserving order.

    Engines frequently produce the same block twice in one response
    (e.g. a region's trigger block also appearing via next-line); the
    cache would filter it, but deduping here keeps issue counters
    meaningful.
    """
    seen = set()
    ordered: List[int] = []
    for block in blocks:
        if block not in seen:
            seen.add(block)
            ordered.append(block)
    return ordered
