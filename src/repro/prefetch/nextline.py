"""Next-line instruction prefetching.

The oldest and simplest instruction prefetcher (Smith 1978; Jouppi
1990): on an access (or a miss), prefetch the following N sequential
blocks.  It captures the sequential body of functions but cannot follow
discontinuities, and its over-fetch past region ends pollutes the cache
— both limitations the paper uses it to illustrate (Section 5.5).
"""

from __future__ import annotations

from typing import List

from .base import Prefetcher


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential blocks.

    ``trigger`` selects the classic variants: ``"access"`` (tagged
    next-line: prefetch on every demand access — the paper's
    "aggressive" configuration) or ``"miss"`` (prefetch only on demand
    misses).
    """

    def __init__(self, degree: int = 4, trigger: str = "access") -> None:
        super().__init__()
        if degree <= 0:
            raise ValueError("degree must be positive")
        if trigger not in ("access", "miss"):
            raise ValueError(f"unknown trigger {trigger!r}")
        self.degree = degree
        self.trigger = trigger
        self._miss_only = trigger == "miss"
        self.name = f"next-line(d={degree},{trigger})"
        self._last_triggered: int = -1

    def on_demand_access(self, block: int, pc: int, trap_level: int,
                         hit: bool, was_prefetched: bool) -> List[int]:
        out: List[int] = []
        self.on_demand_access_into(block, pc, trap_level, hit,
                                   was_prefetched, out)
        return out

    def on_demand_access_into(self, block: int, pc: int, trap_level: int,
                              hit: bool, was_prefetched: bool,
                              out: List[int]) -> int:
        if hit and self._miss_only:
            return 0
        if block == self._last_triggered:
            # Same-block fetch burst: the line buffer absorbs these in
            # hardware; re-issuing the same window is pure overhead.
            return 0
        self._last_triggered = block
        self.stats.triggers += 1
        degree = self.degree
        append = out.append
        for offset in range(1, degree + 1):
            append(block + offset)
        self.stats.issued += degree
        return degree

    def reset(self) -> None:
        super().reset()
        self._last_triggered = -1
