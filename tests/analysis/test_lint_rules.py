"""reprolint rules: one true-positive and one true-negative per rule.

Fixtures drive :func:`repro.analysis.check_source` directly with
synthetic paths — scoping is purely path-based, so a fixture placed at
``src/repro/sim/mod.py`` exercises exactly what the real tree would.
"""

from __future__ import annotations

import textwrap

from repro.analysis import check_source

#: Synthetic paths: inside a result-producing package module / outside
#: the package entirely.
SIM = "src/repro/sim/mod.py"
TESTS = "tests/sim/test_mod.py"


def lint(source: str, path: str = SIM):
    return check_source(textwrap.dedent(source), path)


def codes(source: str, path: str = SIM):
    return [finding.code for finding in lint(source, path)]


class TestRL001UnseededRandom:
    def test_global_draw_flagged(self):
        assert codes("import random\nx = random.random()\n") == ["RL001"]

    def test_global_seed_flagged(self):
        assert codes("import random\nrandom.seed(3)\n") == ["RL001"]

    def test_unseeded_random_instance_flagged(self):
        assert codes("import random\nr = random.Random()\n") == ["RL001"]

    def test_unseeded_imported_random_flagged(self):
        source = "from random import Random\nr = Random()\n"
        assert codes(source) == ["RL001"]

    def test_seeded_random_clean(self):
        assert codes("import random\nr = random.Random(0)\n") == []

    def test_instance_draw_clean(self):
        source = "import random\nr = random.Random(7)\nx = r.random()\n"
        assert codes(source) == []

    def test_rng_module_exempt(self):
        source = "import random\nx = random.random()\n"
        assert codes(source, "src/repro/common/rng.py") == []


class TestRL002WallClock:
    SOURCE = "import time\n\ndef f():\n    return time.time()\n"

    def test_clock_in_result_module_flagged(self):
        assert codes(self.SOURCE) == ["RL002"]

    def test_monotonic_flagged(self):
        source = "import time\nx = time.monotonic()\n"
        assert codes(source, "src/repro/trace/mod.py") == ["RL002"]

    def test_datetime_now_flagged(self):
        source = ("from datetime import datetime\n"
                  "stamp = datetime.now()\n")
        assert codes(source, "src/repro/scenarios/mod.py") == ["RL002"]

    def test_outside_result_modules_clean(self):
        assert codes(self.SOURCE, TESTS) == []
        assert codes(self.SOURCE, "src/repro/experiments/mod.py") == []

    def test_store_scratch_sweep_allowlisted(self):
        source = ("import time\n\n"
                  "class TraceStore:\n"
                  "    def _sweep_scratch(self):\n"
                  "        return time.time() - 3600.0\n")
        assert codes(source, "src/repro/trace/store.py") == []
        # The same function anywhere else is not allowlisted.
        assert codes(source, "src/repro/trace/other.py") == ["RL002"]


class TestRL003UnorderedIteration:
    def test_for_over_set_flagged(self):
        assert codes("for x in {1, 2, 3}:\n    print(x)\n") == ["RL003"]

    def test_for_over_set_call_flagged(self):
        source = "def f(items):\n    for x in set(items):\n        x\n"
        assert codes(source, TESTS) == ["RL003"]

    def test_set_valued_name_flagged(self):
        source = ("def f(items):\n"
                  "    seen = set(items)\n"
                  "    return [x + 1 for x in seen]\n")
        assert codes(source) == ["RL003"]

    def test_list_conversion_flagged(self):
        assert codes("rows = list({1, 2})\n") == ["RL003"]

    def test_join_flagged(self):
        source = "def f(names):\n    return ','.join(set(names))\n"
        assert codes(source) == ["RL003"]

    def test_sorted_clean(self):
        source = ("def f(items):\n"
                  "    seen = set(items)\n"
                  "    return [x for x in sorted(seen)]\n")
        assert codes(source) == []

    def test_order_insensitive_aggregation_clean(self):
        source = ("def f(hashes, current):\n"
                  "    done = {h for h in hashes}\n"
                  "    return sum(1 for d in done if d in current)\n")
        assert codes(source) == []

    def test_membership_clean(self):
        source = ("def f(items, x):\n"
                  "    seen = set(items)\n"
                  "    return x in seen\n")
        assert codes(source) == []

    def test_bare_keys_flagged_in_result_module(self):
        source = "def f(d):\n    return [k for k in d.keys()]\n"
        assert codes(source) == ["RL003"]

    def test_bare_keys_outside_package_clean(self):
        source = "def f(d):\n    return [k for k in d.keys()]\n"
        assert codes(source, TESTS) == []

    def test_plain_dict_iteration_clean(self):
        source = "def f(d):\n    return [k for k in d]\n"
        assert codes(source) == []


class TestRL004EnvRead:
    def test_environ_get_flagged(self):
        source = "import os\nvalue = os.environ.get('REPRO_X')\n"
        assert codes(source, "src/repro/experiments/mod.py") == ["RL004"]

    def test_getenv_flagged(self):
        source = "import os\nvalue = os.getenv('REPRO_X')\n"
        assert codes(source) == ["RL004"]

    def test_sanctioned_modules_exempt(self):
        source = "import os\nvalue = os.environ.get('REPRO_X')\n"
        assert codes(source, "src/repro/trace/store.py") == []
        assert codes(source, "src/repro/trace/serialize.py") == []
        assert codes(source, "src/repro/common/config.py") == []

    def test_outside_package_clean(self):
        source = "import os\nvalue = os.environ.get('REPRO_X')\n"
        assert codes(source, TESTS) == []
        assert codes(source, "benchmarks/bench_mod.py") == []


class TestRL005MutableDefault:
    def test_list_default_flagged(self):
        assert codes("def f(x=[]):\n    return x\n", TESTS) == ["RL005"]

    def test_dict_call_default_flagged(self):
        assert codes("def f(x=dict()):\n    return x\n") == ["RL005"]

    def test_keyword_only_default_flagged(self):
        assert codes("def f(*, x=set()):\n    return x\n") == ["RL005"]

    def test_none_default_clean(self):
        assert codes("def f(x=None, y=(), z=1):\n    return x\n") == []


HOT_LOOP = """\
# reprolint: hot
def walk(items):
    total = 0
    for item in items:
        pair = [item, item + 1]
        total += pair[0]
    return total
"""


class TestRL006HotLoopAllocation:
    def test_allocation_in_hot_loop_flagged(self):
        assert codes(HOT_LOOP, TESTS) == ["RL006"]

    def test_unmarked_function_clean(self):
        unmarked = HOT_LOOP.replace("# reprolint: hot\n", "")
        assert codes(unmarked, TESTS) == []

    def test_comprehension_in_hot_loop_flagged(self):
        source = ("# reprolint: hot\n"
                  "def walk(groups):\n"
                  "    out = []\n"
                  "    for group in groups:\n"
                  "        out.extend([g + 1 for g in group])\n"
                  "    return out\n")
        assert codes(source, TESTS) == ["RL006"]

    def test_allocation_outside_loop_clean(self):
        source = ("# reprolint: hot\n"
                  "def walk(items):\n"
                  "    scratch = []\n"
                  "    for item in items:\n"
                  "        scratch.append(item)\n"
                  "    return scratch\n")
        assert codes(source, TESTS) == []

    def test_loop_header_allocation_clean(self):
        # The iterable is evaluated once per loop entry, not per
        # iteration.
        source = ("# reprolint: hot\n"
                  "def walk(items):\n"
                  "    total = 0\n"
                  "    for item in list(items):\n"
                  "        total += item\n"
                  "    return total\n")
        assert codes(source, TESTS) == []

    def test_inline_marker_attaches(self):
        source = ("def walk(items):  # reprolint: hot\n"
                  "    for item in items:\n"
                  "        x = {item: 1}\n")
        assert codes(source, TESTS) == ["RL006"]


class TestRL007SwallowedContractError:
    def test_swallowed_flagged(self):
        source = ("def f(path):\n"
                  "    try:\n"
                  "        return load(path)\n"
                  "    except TraceFormatError:\n"
                  "        return None\n")
        assert codes(source, TESTS) == ["RL007"]

    def test_tuple_catch_flagged(self):
        source = ("def f(path):\n"
                  "    try:\n"
                  "        return load(path)\n"
                  "    except (ValueError, SpecError):\n"
                  "        pass\n")
        assert codes(source, TESTS) == ["RL007"]

    def test_reraise_clean(self):
        source = ("def f(path):\n"
                  "    try:\n"
                  "        return load(path)\n"
                  "    except SpecError as error:\n"
                  "        raise RuntimeError('bad spec') from error\n")
        assert codes(source, TESTS) == []

    def test_self_heal_clean(self):
        source = ("def f(path):\n"
                  "    try:\n"
                  "        return load(path)\n"
                  "    except TraceFormatError:\n"
                  "        path.unlink(missing_ok=True)\n"
                  "        return None\n")
        assert codes(source, TESTS) == []

    def test_other_exceptions_clean(self):
        source = ("def f(path):\n"
                  "    try:\n"
                  "        return load(path)\n"
                  "    except FileNotFoundError:\n"
                  "        return None\n")
        assert codes(source, TESTS) == []


class TestRL008FloatCounter:
    def test_float_increment_on_counter_flagged(self):
        source = ("class Stats:\n"
                  "    def record(self):\n"
                  "        self.misses += 1.0\n")
        assert codes(source) == ["RL008"]

    def test_scaled_float_flagged(self):
        source = "def f(prefetches_issued, w):\n"
        source += "    prefetches_issued += w * 2.0\n"
        assert codes(source) == ["RL008"]

    def test_int_increment_clean(self):
        source = ("class Stats:\n"
                  "    def record(self):\n"
                  "        self.misses += 1\n")
        assert codes(source) == []

    def test_non_counter_float_clean(self):
        # timing.py's issue_at is elapsed cycles, not an event count.
        source = "def f(issue_at):\n    issue_at += 1.0\n"
        assert codes(source) == []

    def test_outside_stats_modules_clean(self):
        source = ("class Stats:\n"
                  "    def record(self):\n"
                  "        self.misses += 1.0\n")
        assert codes(source, "src/repro/experiments/mod.py") == []


class TestRL009BroadExceptRetryPath:
    SERVICE = "src/repro/service/mod.py"
    SOURCE = ("def f():\n"
              "    try:\n"
              "        work()\n"
              "    except Exception:\n"
              "        pass\n")

    def test_broad_except_in_retry_path_flagged(self):
        assert codes(self.SOURCE, self.SERVICE) == ["RL009"]

    def test_bare_except_flagged(self):
        source = ("def f():\n"
                  "    try:\n"
                  "        work()\n"
                  "    except:\n"
                  "        pass\n")
        assert codes(source, "src/repro/faults/mod.py") == ["RL009"]

    def test_base_exception_in_tuple_flagged(self):
        source = ("def f():\n"
                  "    try:\n"
                  "        work()\n"
                  "    except (ValueError, BaseException):\n"
                  "        pass\n")
        assert codes(source, "src/repro/scenarios/runner.py") == ["RL009"]

    def test_reraise_clean(self):
        source = ("def f(strict):\n"
                  "    try:\n"
                  "        work()\n"
                  "    except Exception:\n"
                  "        if strict:\n"
                  "            raise\n"
                  "        log()\n")
        assert codes(source, self.SERVICE) == []

    def test_narrow_except_clean(self):
        source = ("def f():\n"
                  "    try:\n"
                  "        work()\n"
                  "    except OSError:\n"
                  "        pass\n")
        assert codes(source, self.SERVICE) == []

    def test_outside_failure_model_paths_clean(self):
        # Broad excepts elsewhere (e.g. the sim package) are RL009-free.
        assert codes(self.SOURCE) == []
        assert codes(self.SOURCE, TESTS) == []

    def test_suppression_with_rationale_applies(self):
        source = ("def f():\n"
                  "    try:\n"
                  "        work()\n"
                  "    except Exception:  "
                  "# reprolint: disable=RL009 - last-resort boundary\n"
                  "        pass\n")
        assert codes(source, self.SERVICE) == []


class TestDirectivesAndMeta:
    def test_inline_suppression_applies(self):
        source = ("import random\n"
                  "x = random.random()  "
                  "# reprolint: disable=RL001 - fixture\n")
        assert codes(source) == []

    def test_standalone_suppression_covers_next_line(self):
        source = ("import random\n"
                  "# reprolint: disable=RL001 - fixture\n"
                  "x = random.random()\n")
        assert codes(source) == []

    def test_suppression_is_code_specific(self):
        source = ("import random\n"
                  "# reprolint: disable=RL002 - wrong code\n"
                  "x = random.random()\n")
        found = codes(source)
        assert "RL001" in found      # not suppressed
        assert "RL000" in found      # RL002 suppression never fires

    def test_unused_suppression_reported(self):
        source = "x = 1  # reprolint: disable=RL005 - stale\n"
        assert codes(source, TESTS) == ["RL000"]

    def test_unknown_code_reported(self):
        source = "x = 1  # reprolint: disable=RL999 - no such rule\n"
        assert codes(source, TESTS) == ["RL000"]

    def test_unattached_hot_marker_reported(self):
        source = "# reprolint: hot\nx = 1\n"
        assert codes(source, TESTS) == ["RL000"]

    def test_malformed_directive_reported(self):
        source = "x = 1  # reprolint: disalbe=RL001\n"
        assert codes(source, TESTS) == ["RL000"]

    def test_directive_in_string_ignored(self):
        source = 'text = "# reprolint: disalbe=RL001"\n'
        assert codes(source, TESTS) == []

    def test_parse_error_reported(self):
        assert codes("def broken(:\n", TESTS) == ["RL900"]


class TestDigests:
    def test_identical_findings_get_distinct_digests(self):
        source = ("import random\n"
                  "x = random.random()\n"
                  "y = 1\n"
                  "x = random.random()\n")
        findings = lint(source)
        assert [f.code for f in findings] == ["RL001", "RL001"]
        assert findings[0].digest() != findings[1].digest()

    def test_digest_survives_line_drift(self):
        source = "import random\nx = random.random()\n"
        drifted = "import random\n\n\n# padding\nx = random.random()\n"
        original = lint(source)[0]
        moved = lint(drifted)[0]
        assert original.line != moved.line
        assert original.digest() == moved.digest()
