"""``repro lint`` CLI: exit codes, JSON schema, baseline round-trip.

The acceptance tests for the lint gate itself live here too: the repo's
own tree must lint clean against the committed baseline, and a
deliberately corrupted copy of a real kernel module must be caught.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import BASELINE_NAME, check_source
from repro.cli import build_parser, main

#: The repository root (tests/analysis/ is two levels down).
REPO_ROOT = Path(__file__).resolve().parents[2]

#: A violation reprolint flags everywhere (RL005 is unscoped).
VIOLATION = "def f(x=[]):\n    return x\n"

CLEAN = "def f(x=None):\n    return x\n"


def run_lint(*argv: str) -> int:
    return main(["lint", *argv])


class TestParser:
    def test_lint_subcommand_parses(self):
        args = build_parser().parse_args(["lint", "src", "--format",
                                          "json"])
        assert args.paths == ["src"]
        assert args.output_format == "json"

    def test_rejects_unknown_format(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "yaml"])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        assert run_lint("mod.py", "--root", str(tmp_path)) == 0
        assert "clean" in capsys.readouterr().out

    def test_finding_exits_one(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION)
        assert run_lint("mod.py", "--root", str(tmp_path)) == 1
        assert "RL005" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code = run_lint("nope.py", "--root", str(tmp_path))
        assert code == 2
        assert "no such path" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        baseline = tmp_path / BASELINE_NAME
        baseline.write_text("{not json")
        code = run_lint("mod.py", "--root", str(tmp_path))
        assert code == 2
        assert "baseline" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert run_lint("--list-rules") == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004",
                     "RL005", "RL006", "RL007", "RL008", "RL009"):
            assert code in out


class TestJsonFormat:
    def test_schema(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION)
        code = run_lint("mod.py", "--root", str(tmp_path),
                        "--format", "json")
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["clean"] is False
        assert payload["summary"] == {"total": 1, "new": 1,
                                      "baselined": 0,
                                      "unused_baseline": 0}
        (finding,) = payload["findings"]
        assert finding["code"] == "RL005"
        assert finding["file"] == "mod.py"
        assert finding["line"] == 1
        assert finding["baselined"] is False
        assert finding["context"] == "def f(x=[]):"
        assert len(finding["digest"]) == 16

    def test_clean_json(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        assert run_lint("mod.py", "--root", str(tmp_path),
                        "--format", "json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []


class TestBaselineRoundTrip:
    def test_full_cycle(self, tmp_path, capsys):
        """Finding -> baseline -> clean -> code removed -> unused entry."""
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        root = ("--root", str(tmp_path))

        # New finding fails the run.
        assert run_lint("mod.py", *root) == 1
        # Grandfather it.
        assert run_lint("mod.py", *root, "--update-baseline") == 0
        baseline = json.loads(
            (tmp_path / BASELINE_NAME).read_text())
        assert len(baseline["entries"]) == 1
        assert baseline["entries"][0]["code"] == "RL005"
        # Baselined finding no longer fails.
        capsys.readouterr()
        assert run_lint("mod.py", *root) == 0
        assert "1 baselined" in capsys.readouterr().out
        # Fix the code: the stale baseline entry now fails the run.
        mod.write_text(CLEAN)
        capsys.readouterr()
        assert run_lint("mod.py", *root) == 1
        assert "no longer matches" in capsys.readouterr().out
        # --update-baseline clears the debt.
        assert run_lint("mod.py", *root, "--update-baseline") == 0
        assert run_lint("mod.py", *root) == 0

    def test_no_baseline_flag_ignores_entries(self, tmp_path):
        (tmp_path / "mod.py").write_text(VIOLATION)
        root = ("--root", str(tmp_path))
        assert run_lint("mod.py", *root, "--update-baseline") == 0
        assert run_lint("mod.py", *root) == 0
        assert run_lint("mod.py", *root, "--no-baseline") == 1

    def test_baseline_does_not_cover_new_findings(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(VIOLATION)
        root = ("--root", str(tmp_path))
        assert run_lint("mod.py", *root, "--update-baseline") == 0
        mod.write_text(VIOLATION + "def g(y={}):\n    return y\n")
        assert run_lint("mod.py", *root) == 1


class TestRepoTree:
    """The acceptance criteria: the real tree is clean, corruption is
    caught."""

    def test_repo_lints_clean(self, capsys):
        paths = [name for name in ("src", "tests", "benchmarks",
                                   "examples")
                 if (REPO_ROOT / name).is_dir()]
        code = run_lint(*paths, "--root", str(REPO_ROOT))
        out = capsys.readouterr().out
        assert code == 0, f"repo tree must lint clean:\n{out}"

    def test_corrupted_engine_is_caught(self, tmp_path):
        """Injecting random.random() into a copy of sim/engine.py is
        flagged by RL001 at the injected line."""
        real = (REPO_ROOT / "src/repro/sim/engine.py").read_text()
        sandbox = tmp_path / "src" / "repro" / "sim"
        sandbox.mkdir(parents=True)
        corrupted = real + ("\n\ndef _jitter():\n"
                            "    import random\n"
                            "    return random.random()\n")
        (sandbox / "engine.py").write_text(corrupted)
        rel = "src/repro/sim/engine.py"
        clean_findings = check_source(real, rel)
        assert clean_findings == []
        findings = check_source(corrupted, rel)
        assert [f.code for f in findings] == ["RL001"]
        assert findings[0].line == len(corrupted.splitlines())
        # And through the real CLI against the sandbox tree:
        assert run_lint("src", "--root", str(tmp_path),
                        "--no-baseline") == 1

    def test_corrupted_timing_wall_clock_is_caught(self, tmp_path):
        """A wall-clock read smuggled into sim/timing.py trips RL002."""
        real = (REPO_ROOT / "src/repro/sim/timing.py").read_text()
        corrupted = real + ("\n\ndef _stamp():\n"
                            "    import time\n"
                            "    return time.time()\n")
        findings = check_source(corrupted, "src/repro/sim/timing.py")
        assert [f.code for f in findings] == ["RL002"]
