"""Docs check: the README's command blocks must stay runnable.

Every ``repro ...`` and ``python -m repro.experiments ...`` line inside
a fenced code block of README.md is parsed through the real argument
parsers (``parse_args`` validates subcommands, flags, and choice values
without executing anything), and every ``examples/`` path a command
references must exist.  A README that drifts from the CLI — a renamed
flag, a deleted subcommand, a moved scenario file — fails here, in
tier-1, before a user ever copy-pastes it.
"""

import re
import shlex

import pytest

from repro.cli import build_parser as cli_parser
from repro.experiments.runner import build_parser as experiments_parser

_FENCE = re.compile(r"```(?:bash|sh|console)?\n(.*?)```", re.DOTALL)


def readme_commands(repo_root):
    """Every command line in the README's fenced code blocks."""
    text = (repo_root / "README.md").read_text()
    commands = []
    for block in _FENCE.findall(text):
        for line in block.splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                commands.append(line)
    return commands


@pytest.fixture(scope="module")
def commands(repo_root):
    found = readme_commands(repo_root)
    assert found, "README.md has no fenced command blocks to check"
    return found


class TestReadmeCommands:
    def test_quickstart_surfaces_are_documented(self, commands):
        joined = "\n".join(commands)
        for needle in ("pip install -e .", "repro compare",
                       "repro traces build", "repro sweep run",
                       "python -m repro.experiments",
                       "python -m pytest -x -q"):
            assert needle in joined, f"README quickstart lost {needle!r}"

    def test_repro_commands_parse(self, commands):
        for command in commands:
            tokens = shlex.split(command)
            if tokens[:1] != ["repro"]:
                continue
            try:
                cli_parser().parse_args(tokens[1:])
            except SystemExit as error:  # argparse rejected it
                pytest.fail(f"README command does not parse: {command!r} "
                            f"(exit {error.code})")

    def test_experiment_runner_commands_parse(self, commands):
        for command in commands:
            tokens = shlex.split(command)
            if tokens[:3] != ["python", "-m", "repro.experiments"]:
                continue
            try:
                experiments_parser().parse_args(tokens[3:])
            except SystemExit as error:
                pytest.fail(f"README command does not parse: {command!r} "
                            f"(exit {error.code})")

    def test_referenced_example_files_exist(self, commands, repo_root):
        for command in commands:
            for token in shlex.split(command):
                if token.startswith("examples/"):
                    assert (repo_root / token).is_file(), (
                        f"README references missing file {token!r}")

    def test_documented_env_knobs_exist(self, repo_root):
        """The configuration table's environment variables must match
        the names the code actually reads."""
        text = (repo_root / "README.md").read_text()
        from repro.trace.store import STORE_ENV

        assert STORE_ENV in text
        assert "REPRO_SIM_KERNEL" in text
        import inspect

        import repro.sim.engine as engine_source

        assert "REPRO_SIM_KERNEL" in inspect.getsource(engine_source)


class TestDesignDocs:
    def test_design_covers_scenarios(self, repo_root):
        design = (repo_root / "DESIGN.md").read_text()
        assert "## Scenario sweeps" in design
        for needle in ("point hash", "resume", "spec validation"):
            assert needle in design, f"DESIGN.md scenario section lost "\
                                     f"{needle!r}"

    def test_changes_has_entry_per_pr(self, repo_root):
        changes = (repo_root / "CHANGES.md").read_text()
        assert changes.count("- PR ") >= 4
