"""Docs check: the README's command blocks must stay runnable, and
docs/api.md must match the service's actual HTTP contract.

Every ``repro ...`` and ``python -m repro.experiments ...`` line inside
a fenced code block of README.md is parsed through the real argument
parsers (``parse_args`` validates subcommands, flags, and choice values
without executing anything), and every ``examples/`` path a command
references must exist.  A README that drifts from the CLI — a renamed
flag, a deleted subcommand, a moved scenario file — fails here, in
tier-1, before a user ever copy-pastes it.

docs/api.md gets the same treatment against
:mod:`repro.service.schemas`: its ``### METHOD /path`` headings must
equal the route table, and every fenced ``json schema=NAME`` example
must satisfy that response schema — the schemas live responses are
built from — so the documented examples and the wire format cannot
diverge.
"""

import json
import re
import shlex

import pytest

from repro.cli import build_parser as cli_parser
from repro.experiments.runner import build_parser as experiments_parser

_FENCE = re.compile(r"```(?:bash|sh|console)?\n(.*?)```", re.DOTALL)


def readme_commands(repo_root):
    """Every command line in the README's fenced code blocks."""
    text = (repo_root / "README.md").read_text()
    commands = []
    for block in _FENCE.findall(text):
        for line in block.splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                commands.append(line)
    return commands


@pytest.fixture(scope="module")
def commands(repo_root):
    found = readme_commands(repo_root)
    assert found, "README.md has no fenced command blocks to check"
    return found


class TestReadmeCommands:
    def test_quickstart_surfaces_are_documented(self, commands):
        joined = "\n".join(commands)
        for needle in ("pip install -e .", "repro compare",
                       "repro traces build", "repro sweep run",
                       "python -m repro.experiments",
                       "python -m pytest -x -q"):
            assert needle in joined, f"README quickstart lost {needle!r}"

    def test_repro_commands_parse(self, commands):
        for command in commands:
            tokens = shlex.split(command)
            if tokens[:1] != ["repro"]:
                continue
            try:
                cli_parser().parse_args(tokens[1:])
            except SystemExit as error:  # argparse rejected it
                pytest.fail(f"README command does not parse: {command!r} "
                            f"(exit {error.code})")

    def test_experiment_runner_commands_parse(self, commands):
        for command in commands:
            tokens = shlex.split(command)
            if tokens[:3] != ["python", "-m", "repro.experiments"]:
                continue
            try:
                experiments_parser().parse_args(tokens[3:])
            except SystemExit as error:
                pytest.fail(f"README command does not parse: {command!r} "
                            f"(exit {error.code})")

    def test_referenced_example_files_exist(self, commands, repo_root):
        for command in commands:
            for token in shlex.split(command):
                if token.startswith("examples/"):
                    assert (repo_root / token).is_file(), (
                        f"README references missing file {token!r}")

    def test_documented_env_knobs_exist(self, repo_root):
        """The configuration table's environment variables must match
        the names the code actually reads."""
        text = (repo_root / "README.md").read_text()
        from repro.trace.store import STORE_ENV

        assert STORE_ENV in text
        assert "REPRO_SIM_KERNEL" in text
        import inspect

        import repro.sim.engine as engine_source

        assert "REPRO_SIM_KERNEL" in inspect.getsource(engine_source)


class TestDesignDocs:
    def test_design_covers_scenarios(self, repo_root):
        design = (repo_root / "DESIGN.md").read_text()
        assert "## Scenario sweeps" in design
        for needle in ("point hash", "resume", "spec validation"):
            assert needle in design, f"DESIGN.md scenario section lost "\
                                     f"{needle!r}"

    def test_design_covers_service(self, repo_root):
        design = (repo_root / "DESIGN.md").read_text()
        assert "## Sweep service" in design
        for needle in ("byte-identical", "docs/api.md", "SIGTERM"):
            assert needle in design, f"DESIGN.md service section lost "\
                                     f"{needle!r}"
        # The sweeps section points readers at the service layered on it.
        scenarios = design.split("## Scenario sweeps", 1)[1]
        scenarios = scenarios.split("\n## ", 1)[0]
        assert "Sweep service" in scenarios

    def test_changes_has_entry_per_pr(self, repo_root):
        changes = (repo_root / "CHANGES.md").read_text()
        assert changes.count("- PR ") >= 4

    def test_paper_summary_is_not_a_stub(self, repo_root):
        """PAPER.md must actually summarize PIF: the mechanism names a
        reader needs are non-negotiable."""
        paper = (repo_root / "PAPER.md").read_text().replace("\n", " ")
        for needle in ("retire", "stream address buffer",
                       "spatial region", "temporal streaming"):
            assert needle in paper, f"PAPER.md summary lost {needle!r}"


_API_HEADING = re.compile(r"^### (GET|POST|DELETE|PUT|PATCH) (\S+)$",
                          re.MULTILINE)
_API_EXAMPLE = re.compile(r"```json schema=([a-z_]+)\n(.*?)```", re.DOTALL)


class TestApiDocs:
    """docs/api.md ⇔ repro.service.schemas, both directions."""

    @pytest.fixture(scope="class")
    def api_doc(self, repo_root):
        return (repo_root / "docs" / "api.md").read_text()

    def test_documented_routes_equal_route_table(self, api_doc):
        from repro.service.schemas import ROUTES

        documented = set(_API_HEADING.findall(api_doc))
        actual = {(route.method, route.pattern) for route in ROUTES}
        assert documented == actual, (
            f"docs/api.md headings vs ROUTES: undocumented "
            f"{sorted(actual - documented)}, phantom "
            f"{sorted(documented - actual)}")

    def test_json_examples_satisfy_response_schemas(self, api_doc):
        from repro.service.schemas import validate_payload

        examples = _API_EXAMPLE.findall(api_doc)
        assert len(examples) >= 5, "docs/api.md lost its JSON examples"
        for schema, block in examples:
            payload = json.loads(block)  # example must be valid JSON
            validate_payload(schema, payload)

    def test_every_json_schema_is_exemplified(self, api_doc):
        from repro.service.schemas import RESPONSE_SCHEMAS

        shown = {schema for schema, _ in _API_EXAMPLE.findall(api_doc)}
        assert shown == set(RESPONSE_SCHEMAS), (
            f"docs/api.md examples cover {sorted(shown)}, schemas are "
            f"{sorted(RESPONSE_SCHEMAS)}")

    def test_documented_error_statuses_are_the_emitted_ones(self, api_doc):
        """The error table must list exactly the statuses the HTTP
        layer can produce (grepped from the handler source, the same
        trick the README env-knob test uses)."""
        import inspect

        from repro.service import http as http_module

        source = inspect.getsource(http_module)
        emitted = {int(code) for code in
                   re.findall(r"_json_response\(\s*(\d{3})", source)}
        emitted -= {200, 202}
        table_rows = re.findall(r"^\| (\d{3}) \|", api_doc, re.MULTILINE)
        assert {int(code) for code in table_rows} == emitted

    def test_serve_commands_parse(self, api_doc):
        for block in _FENCE.findall(api_doc):
            for line in block.splitlines():
                if not line.strip().startswith("repro "):
                    continue  # prose/curl/layout lines share the fences
                tokens = shlex.split(line.strip())
                try:
                    cli_parser().parse_args(tokens[1:])
                except SystemExit as error:
                    pytest.fail(f"docs/api.md command does not parse: "
                                f"{line.strip()!r} (exit {error.code})")
