"""Direction predictors: counters, bimodal, gshare, hybrid."""

import pytest

from repro.branch.counters import CounterTable, SaturatingCounter
from repro.branch.predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    HybridPredictor,
    make_direction_predictor,
)


class TestSaturatingCounter:
    def test_initial_weakly_taken(self):
        assert SaturatingCounter().taken

    def test_saturates_high(self):
        counter = SaturatingCounter()
        for _ in range(10):
            counter.update(True)
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter()
        for _ in range(10):
            counter.update(False)
        assert counter.value == 0
        assert not counter.taken

    def test_hysteresis(self):
        counter = SaturatingCounter(initial=3)
        counter.update(False)
        assert counter.taken  # one not-taken does not flip a strong state

    def test_rejects_bad_init(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=9)


class TestCounterTable:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            CounterTable(100)

    def test_trains_per_slot(self):
        table = CounterTable(4)
        table.update(0, False)
        table.update(0, False)
        assert not table.predict(0)
        assert table.predict(1)

    def test_aliasing_wraps(self):
        table = CounterTable(4)
        for _ in range(2):
            table.update(0, False)
        assert not table.predict(4)  # same slot as key 0


class TestBimodal:
    def test_learns_bias(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x100, False)
        assert not predictor.predict(0x100)

    def test_per_pc_independence(self):
        predictor = BimodalPredictor(1024)
        for _ in range(4):
            predictor.update(0x100, False)
        assert predictor.predict(0x104) != predictor.predict(0x100) or \
            predictor.predict(0x104)


class TestGShare:
    def test_history_advances_on_update(self):
        predictor = GSharePredictor(64, history_bits=4)
        predictor.update(0x100, True)
        assert predictor.history == 1
        predictor.update(0x100, False)
        assert predictor.history == 2

    def test_history_bounded(self):
        predictor = GSharePredictor(64, history_bits=4)
        for _ in range(32):
            predictor.update(0x100, True)
        assert predictor.history == 0b1111

    def test_learns_alternating_pattern(self):
        # gshare can learn T,N,T,N... via history; bimodal cannot.
        predictor = GSharePredictor(1024, history_bits=8)
        outcome = True
        for _ in range(200):
            predictor.update(0x40, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            if predictor.predict(0x40) == outcome:
                correct += 1
            predictor.update(0x40, outcome)
            outcome = not outcome
        assert correct > 90


class TestHybrid:
    def test_chooser_prefers_better_component(self):
        # An alternating branch is learnable by gshare but not bimodal;
        # the trained hybrid must track it, proving the chooser works.
        predictor = HybridPredictor()
        outcome = True
        for _ in range(400):
            predictor.update(0x80, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            if predictor.predict(0x80) == outcome:
                correct += 1
            predictor.update(0x80, outcome)
            outcome = not outcome
        assert correct > 80

    def test_biased_branch_accuracy(self):
        predictor = HybridPredictor()
        for _ in range(50):
            predictor.update(0x200, True)
        assert predictor.predict(0x200)


class TestFactory:
    @pytest.mark.parametrize("name", ["hybrid", "gshare", "bimodal",
                                      "always_taken"])
    def test_makes_each(self, name):
        predictor = make_direction_predictor(name)
        assert isinstance(predictor.predict(0x100), bool)

    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        predictor.update(0, False)
        assert predictor.predict(0)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_direction_predictor("tage")
