"""Branch target buffer and return-address stack."""

import pytest

from repro.branch.btb import BranchTargetBuffer, ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, associativity=4)
        assert btb.lookup(0x100) is None
        btb.update(0x100, 0x4000)
        assert btb.lookup(0x100) == 0x4000
        assert btb.misses == 1 and btb.hits == 1

    def test_update_replaces_target(self):
        btb = BranchTargetBuffer(64)
        btb.update(0x100, 0x4000)
        btb.update(0x100, 0x8000)
        assert btb.lookup(0x100) == 0x8000

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(4, associativity=2)  # 2 sets x 2 ways
        # Fill one set (pcs mapping to set 0) beyond capacity.
        pcs = [((2 * i) << 2) for i in range(3)]
        for pc in pcs:
            btb.update(pc, pc + 4)
        assert btb.lookup(pcs[0]) is None

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, associativity=4)


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow(self):
        ras = ReturnAddressStack(2)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_discards_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_peek_non_destructive(self):
        ras = ReturnAddressStack(2)
        ras.push(7)
        assert ras.peek() == 7
        assert len(ras) == 1
        assert ras.pop() == 7
        assert ras.peek() is None

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)
