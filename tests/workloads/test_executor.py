"""Program execution: control-record semantics."""

import pytest

from repro.trace.records import TL_APPLICATION, TL_INTERRUPT
from repro.workloads.executor import ProgramExecutor
from repro.workloads.generator import build_program
from repro.workloads.program import BlockKind
from repro.workloads.spec import get_spec


@pytest.fixture(scope="module")
def executed():
    spec = get_spec("web-zeus")
    program = build_program(spec, seed=5)
    executor = ProgramExecutor(program, spec, seed=5)
    records = list(executor.run(60_000))
    return program, executor, records


class TestExecution:
    def test_reaches_budget(self, executed):
        _, _, records = executed
        assert sum(r.instructions for r in records) >= 60_000

    def test_rejects_bad_budget(self, executed):
        program, _, _ = executed
        spec = get_spec("web-zeus")
        with pytest.raises(ValueError):
            list(ProgramExecutor(program, spec, seed=1).run(0))

    def test_control_flow_is_connected(self, executed):
        program, _, records = executed
        for current, following in zip(records, records[1:]):
            if following.trap_level == TL_INTERRUPT and \
                    current.trap_level == TL_APPLICATION:
                continue  # interrupt redirect is asynchronous
            if current.trap_level == TL_INTERRUPT and \
                    following.trap_level == TL_APPLICATION:
                continue  # handler return resumes the application
            assert following.pc == current.next_pc

    def test_next_pc_matches_taken_semantics(self, executed):
        program, _, records = executed
        for record in records:
            block = program.block_starting_at(record.pc)
            if record.kind in (BlockKind.CONDITIONAL, BlockKind.LOOP):
                if record.taken:
                    assert record.next_pc == block.target
                else:
                    assert record.next_pc == block.end_pc

    def test_transactions_complete(self, executed):
        _, executor, _ = executed
        assert executor.transactions_completed > 3

    def test_interrupts_taken(self, executed):
        _, executor, records = executed
        assert executor.interrupts_taken > 0
        assert any(r.trap_level == TL_INTERRUPT for r in records)

    def test_handler_records_form_complete_walks(self, executed):
        _, _, records = executed
        depth = 0
        in_handler = False
        for record in records:
            if record.trap_level == TL_INTERRUPT:
                in_handler = True
                if record.kind == BlockKind.CALL:
                    depth += 1
                elif record.kind == BlockKind.RETURN:
                    if depth == 0:
                        in_handler = False
                    else:
                        depth -= 1
            else:
                assert not in_handler, "handler did not finish before resume"

    def test_determinism(self):
        spec = get_spec("dss-qry17")
        program = build_program(spec, seed=9)
        first = list(ProgramExecutor(program, spec, seed=9).run(30_000))
        second = list(ProgramExecutor(program, spec, seed=9).run(30_000))
        assert first == second

    def test_cores_differ(self):
        spec = get_spec("dss-qry17")
        program = build_program(spec, seed=9)
        a = list(ProgramExecutor(program, spec, seed=9, core=0).run(30_000))
        b = list(ProgramExecutor(program, spec, seed=9, core=1).run(30_000))
        assert a != b

    def test_loop_trip_counts_bounded_but_variable(self, executed):
        program, _, records = executed
        taken = {}
        for record in records:
            if record.kind == BlockKind.LOOP:
                taken.setdefault(record.branch_pc, []).append(record.taken)
        # At least one loop both iterated and exited.
        assert any(True in outcomes and False in outcomes
                   for outcomes in taken.values())

    def test_dispatch_selects_multiple_transaction_types(self, executed):
        program, _, records = executed
        entries = {t.entry for t in program.transactions}
        called = {r.next_pc for r in records
                  if r.kind == BlockKind.CALL and r.next_pc in entries}
        assert len(called) >= 2
