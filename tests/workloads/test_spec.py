"""Workload specifications."""

import pytest

from repro.workloads.spec import (
    PAPER_WORKLOADS,
    WORKLOAD_GROUPS,
    WORKLOAD_NAMES,
    get_spec,
    scaled_spec,
)


class TestRegistry:
    def test_six_paper_workloads(self):
        assert len(PAPER_WORKLOADS) == 6
        assert set(WORKLOAD_NAMES) == set(PAPER_WORKLOADS)

    def test_groups_cover_suites(self):
        assert [label for label, _ in WORKLOAD_GROUPS] == ["OLTP", "DSS", "Web"]
        grouped = [n for _, names in WORKLOAD_GROUPS for n in names]
        assert grouped == list(WORKLOAD_NAMES)

    def test_get_spec(self):
        assert get_spec("oltp-db2").suite == "oltp"

    def test_get_spec_error_lists_names(self):
        with pytest.raises(KeyError, match="oltp-db2"):
            get_spec("oltp-db3")

    def test_suite_characteristics(self):
        oltp = get_spec("oltp-db2")
        dss = get_spec("dss-qry2")
        web = get_spec("web-apache")
        # OLTP: biggest footprint; DSS: loopiest; Web: smallest functions.
        assert oltp.code_footprint_kb > dss.code_footprint_kb
        assert dss.mean_loop_iterations > oltp.mean_loop_iterations
        assert web.mean_function_blocks < oltp.mean_function_blocks
        assert dss.loop_trip_jitter < oltp.loop_trip_jitter


class TestValidation:
    def test_rejects_bad_probability(self):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(get_spec("oltp-db2"), loop_probability=1.5)

    def test_rejects_bad_footprint(self):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(get_spec("oltp-db2"), code_footprint_kb=0)

    def test_rejects_single_level(self):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(get_spec("oltp-db2"), call_levels=1)


class TestScaling:
    def test_scaled_spec_shrinks(self):
        spec = get_spec("oltp-db2")
        small = scaled_spec(spec, 0.25)
        assert small.code_footprint_kb == spec.code_footprint_kb // 4

    def test_scaled_spec_floor(self):
        assert scaled_spec(get_spec("dss-qry2"), 1e-9).code_footprint_kb == 64

    def test_scaled_spec_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled_spec(get_spec("dss-qry2"), 0.0)
