"""Property-based tests over generated programs and executions.

These sweep (workload, seed) combinations to check invariants that the
example-based tests only probe at one point.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.addressing import INSTRUCTION_BYTES
from repro.workloads.executor import ProgramExecutor
from repro.workloads.generator import build_program
from repro.workloads.program import BlockKind
from repro.workloads.spec import WORKLOAD_NAMES, get_spec, scaled_spec

# Scaled-down specs keep generation affordable under hypothesis.
_SPECS = {name: scaled_spec(get_spec(name), 0.1) for name in WORKLOAD_NAMES}


@settings(max_examples=8, deadline=None)
@given(st.sampled_from(sorted(WORKLOAD_NAMES)),
       st.integers(min_value=0, max_value=1000))
def test_generated_programs_always_validate(name, seed):
    program = build_program(_SPECS[name], seed)
    program.validate()


@settings(max_examples=6, deadline=None)
@given(st.sampled_from(sorted(WORKLOAD_NAMES)),
       st.integers(min_value=0, max_value=100))
def test_execution_covers_budget_and_stays_in_text(name, seed):
    spec = _SPECS[name]
    program = build_program(spec, seed)
    executor = ProgramExecutor(program, spec, seed=seed)
    retired = 0
    for record in executor.run(8_000):
        retired += record.instructions
        block = program.block_starting_at(record.pc)
        assert block is not None
        assert record.branch_pc == (
            record.pc + (record.instructions - 1) * INSTRUCTION_BYTES)
    assert retired >= 8_000


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=50))
def test_call_return_balance(seed):
    """Every application call eventually returns to its fallthrough
    (checked by replaying the record stream with a shadow stack)."""
    spec = _SPECS["dss-qry17"]
    program = build_program(spec, seed)
    executor = ProgramExecutor(program, spec, seed=seed)
    shadow = []
    for record in executor.run(6_000):
        if record.trap_level != 0:
            continue
        if record.kind == BlockKind.CALL:
            shadow.append(record.branch_pc + INSTRUCTION_BYTES)
        elif record.kind == BlockKind.RETURN and shadow:
            expected = shadow.pop()
            assert record.next_pc == expected


@pytest.mark.parametrize("name", sorted(WORKLOAD_NAMES))
def test_handler_text_never_reached_at_tl0(name):
    spec = _SPECS[name]
    program = build_program(spec, seed=4)
    executor = ProgramExecutor(program, spec, seed=4)
    handler_base = min(f.entry for f in (*program.handlers,
                                         *program.kernel_helpers))
    for record in executor.run(10_000):
        if record.trap_level == 0:
            assert record.pc < handler_base
        else:
            assert record.pc >= handler_base
