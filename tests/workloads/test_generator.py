"""Synthetic program generation: structural invariants."""

import pytest

from repro.common.addressing import INSTRUCTION_BYTES
from repro.workloads.generator import (
    APPLICATION_TEXT_BASE,
    HANDLER_TEXT_BASE,
    build_program,
)
from repro.workloads.program import BlockKind, function_spanning
from repro.workloads.spec import PAPER_WORKLOADS, get_spec


class TestProgramStructure:
    def test_validates(self, small_program):
        small_program.validate()

    def test_functions_are_contiguous(self, small_program):
        for function in small_program.all_functions():
            for current, following in zip(function.blocks,
                                          function.blocks[1:]):
                assert current.end_pc == following.pc

    def test_every_function_returns(self, small_program):
        for function in small_program.all_functions():
            assert function.blocks[-1].kind == BlockKind.RETURN

    def test_handlers_in_separate_segment(self, small_program):
        for handler in (*small_program.handlers,
                        *small_program.kernel_helpers):
            assert handler.entry >= HANDLER_TEXT_BASE
        for function in (small_program.dispatcher, *small_program.functions):
            assert APPLICATION_TEXT_BASE <= function.entry < HANDLER_TEXT_BASE

    def test_transaction_roots_are_level_zero(self, small_program):
        spec = get_spec("web-zeus")
        assert len(small_program.transactions) == spec.transaction_types
        assert all(t.level == 0 for t in small_program.transactions)

    def test_calls_target_function_entries(self, small_program):
        entries = {f.entry for f in small_program.all_functions()}
        for function in small_program.all_functions():
            for block in function.blocks:
                if block.kind == BlockKind.CALL:
                    assert block.target in entries

    def test_calls_descend_levels(self, small_program):
        functions = small_program.functions
        by_entry = {f.entry: f for f in functions}
        for function in functions:
            for block in function.blocks:
                if block.kind == BlockKind.CALL:
                    callee = by_entry.get(block.target)
                    if callee is not None:
                        assert callee.level > function.level

    def test_handler_calls_target_kernel_helpers(self, small_program):
        helper_entries = {f.entry for f in small_program.kernel_helpers}
        saw_call = False
        for handler in small_program.handlers:
            for block in handler.blocks:
                if block.kind == BlockKind.CALL:
                    saw_call = True
                    assert block.target in helper_entries
        assert saw_call

    def test_kernel_helpers_are_leaf(self, small_program):
        for helper in small_program.kernel_helpers:
            assert all(b.kind != BlockKind.CALL for b in helper.blocks)

    def test_local_branches_stay_in_function(self, small_program):
        for function in small_program.all_functions():
            for block in function.blocks:
                if block.kind in (BlockKind.CONDITIONAL, BlockKind.LOOP):
                    assert function.entry <= block.target < function.end_pc

    def test_loops_jump_backward(self, small_program):
        for function in small_program.all_functions():
            for block in function.blocks:
                if block.kind == BlockKind.LOOP:
                    assert block.target <= block.pc

    def test_conditionals_jump_forward(self, small_program):
        for function in small_program.all_functions():
            for block in function.blocks:
                if block.kind == BlockKind.CONDITIONAL:
                    assert block.target > block.pc

    def test_block_lookup(self, small_program):
        function = small_program.functions[0]
        block = function.blocks[0]
        mid_pc = block.pc + INSTRUCTION_BYTES
        assert small_program.block_at(mid_pc) is block
        assert small_program.block_starting_at(block.pc) is block
        assert small_program.block_starting_at(mid_pc) is None

    def test_block_at_gap_returns_none(self, small_program):
        assert small_program.block_at(APPLICATION_TEXT_BASE - 64) is None

    def test_function_spanning(self, small_program):
        function = small_program.functions[3]
        assert function_spanning(small_program.functions,
                                 function.entry) is function


class TestDeterminismAndScale:
    def test_same_seed_same_program(self):
        spec = get_spec("dss-qry2")
        a = build_program(spec, seed=3)
        b = build_program(spec, seed=3)
        assert [f.entry for f in a.all_functions()] == [
            f.entry for f in b.all_functions()]

    def test_different_seed_different_layout(self):
        spec = get_spec("dss-qry2")
        a = build_program(spec, seed=3)
        b = build_program(spec, seed=4)
        assert [f.entry for f in a.functions[:32]] != [
            f.entry for f in b.functions[:32]]

    def test_footprint_near_spec(self):
        spec = get_spec("oltp-db2")
        program = build_program(spec, seed=1)
        footprint = sum(f.size_bytes for f in program.functions)
        assert footprint >= spec.code_footprint_kb * 1024 * 0.5

    @pytest.mark.parametrize("name", sorted(PAPER_WORKLOADS))
    def test_all_paper_workloads_generate(self, name):
        program = build_program(get_spec(name), seed=2)
        program.validate()
        assert program.transactions
        assert program.handlers

    def test_data_dependent_branches_skip_no_calls(self, small_program):
        # The generator's constraint: only stable branches may guard
        # call sites (docstring of _add_local_branches).
        for function in small_program.functions:
            blocks = function.blocks
            for index, block in enumerate(blocks):
                if block.kind != BlockKind.CONDITIONAL:
                    continue
                if not 0.25 <= block.taken_probability <= 0.75:
                    continue
                target_index = next(
                    i for i, b in enumerate(blocks) if b.pc == block.target)
                skipped = blocks[index + 1:target_index]
                assert all(b.kind != BlockKind.CALL for b in skipped)
