"""End-to-end integration: the whole pipeline from spec to speedup."""

from dataclasses import replace

from repro import (
    CacheConfig,
    PIFConfig,
    ProactiveInstructionFetch,
    SystemConfig,
    generate_trace,
    make_prefetcher,
)
from repro.sim import (
    build_view_events,
    measure_pif_predictability,
    run_prefetch_simulation,
    speedup_comparison,
)

CACHE = CacheConfig(capacity_bytes=16 * 1024, associativity=2)


class TestEndToEnd:
    def test_full_pipeline_one_workload(self):
        """spec -> program -> execution -> streams -> PIF -> coverage
        and timing, in one pass, with every cross-layer invariant."""
        trace = generate_trace("dss-qry2", instructions=150_000, seed=31)
        bundle = trace.bundle
        bundle.validate()

        views = build_view_events(bundle, CACHE)
        oracle = measure_pif_predictability(bundle, cache_config=CACHE,
                                            view_events=views)
        assert oracle.coverage() > 0.5

        pif = ProactiveInstructionFetch(PIFConfig(sab_window_regions=3))
        sim = run_prefetch_simulation(bundle, pif, cache_config=CACHE,
                                      warmup_fraction=0.3)
        assert sim.coverage() > 0.5
        assert sim.cache_stats.prefetch_accuracy() > 0.4

        system = replace(SystemConfig(), l1i=CACHE)
        comparison = speedup_comparison(
            bundle, {"pif": ProactiveInstructionFetch(
                PIFConfig(sab_window_regions=3))}, system)
        assert comparison["perfect"] >= comparison["pif"] - 0.02
        assert comparison["pif"] >= 1.0 - 0.01

    def test_public_api_surface(self):
        """Everything the README quickstart uses must be importable from
        the package root."""
        import repro

        for name in ("generate_trace", "ProactiveInstructionFetch",
                     "make_prefetcher", "CacheConfig", "PIFConfig",
                     "SystemConfig", "TraceBundle", "WORKLOAD_NAMES",
                     "PAPER_WORKLOADS", "get_spec", "cached_trace",
                     "AccessOrderPIF", "__version__"):
            assert hasattr(repro, name), name

    def test_all_engines_run_on_all_suites(self):
        """Every engine must survive every workload suite without
        violating the alignment or accounting invariants."""
        for workload in ("oltp-oracle", "web-zeus"):
            bundle = generate_trace(workload, instructions=60_000,
                                    seed=17).bundle
            for engine_name in ("none", "next-line", "stride",
                                "discontinuity", "tifs", "pif"):
                engine = make_prefetcher(engine_name)
                result = run_prefetch_simulation(bundle, engine,
                                                 cache_config=CACHE)
                # Coverage is signed (unbounded below for a polluting
                # engine); a prefetcher can at best eliminate every
                # baseline miss.
                assert result.coverage() <= 1.0, (workload, engine_name)
