"""Figure 1 of the paper, encoded as executable examples.

Left panel: a 4-block direct-mapped cache fragments the access sequence
ABCD into the miss sequence AC after interference from RS — the
temporal correlation between A,B,C,D is destroyed by per-block
replacement.

Right panel: a mispredicted conditional injects wrong-path blocks R,S
between the correct-path accesses A,B and C,D.
"""

from repro.cache.icache import InstructionCache
from repro.common.config import CacheConfig

# A 4-set direct-mapped cache, as in the figure.
FIGURE1_CACHE = CacheConfig(capacity_bytes=4 * 64, associativity=1)

# Blocks chosen so that, as in the figure, R conflicts with A and S
# conflicts with C (same sets), while B and D are undisturbed.
A, B, C, D = 0, 1, 2, 3
R, S = 4, 6  # set(R) == set(A), set(S) == set(C)


def miss_sequence(cache, blocks):
    return [block for block in blocks if not cache.access(block).hit]


class TestFigure1Left:
    def test_conflict_mapping_matches_figure(self):
        cache = InstructionCache(FIGURE1_CACHE)
        assert cache.set_index(R) == cache.set_index(A)
        assert cache.set_index(S) == cache.set_index(C)
        assert cache.set_index(R) != cache.set_index(B)

    def test_first_visit_miss_sequence_equals_access_sequence(self):
        cache = InstructionCache(FIGURE1_CACHE)
        assert miss_sequence(cache, [A, B, C, D]) == [A, B, C, D]

    def test_interference_fragments_the_miss_sequence(self):
        cache = InstructionCache(FIGURE1_CACHE)
        # T1: ABCD all miss.
        assert miss_sequence(cache, [A, B, C, D]) == [A, B, C, D]
        # T2: RS evicts A and C (their conflict partners).
        assert miss_sequence(cache, [R, S]) == [R, S]
        assert not cache.contains(A)
        assert cache.contains(B)
        assert not cache.contains(C)
        assert cache.contains(D)
        # T3: the same access sequence ABCD now misses only AC — the
        # fragmented, non-repetitive miss stream of the figure.
        assert miss_sequence(cache, [A, B, C, D]) == [A, C]

    def test_miss_stream_prefetcher_fails_where_access_stream_succeeds(self):
        """The figure's punchline: replaying the recorded miss stream
        (AC) misses B and D; replaying the access stream (ABCD) covers
        everything."""
        cache = InstructionCache(FIGURE1_CACHE)
        miss_sequence(cache, [A, B, C, D])
        miss_sequence(cache, [R, S])
        recorded_miss_stream = miss_sequence(cache, [A, B, C, D])  # [A, C]
        recorded_access_stream = [A, B, C, D]
        next_occurrence_needs = {A, B, C, D}
        assert set(recorded_miss_stream) != next_occurrence_needs
        assert set(recorded_access_stream) == next_occurrence_needs


class TestFigure1Right:
    def test_wrong_path_noise_interleaves_with_correct_path(self):
        """Reproduce the right panel with the real fetch model: find a
        trace misprediction and check wrong-path accesses are injected
        between correct-path accesses."""
        from repro.pipeline.tracegen import generate_trace

        bundle = generate_trace("oltp-db2", instructions=60_000,
                                seed=3).bundle
        flags = [access.wrong_path for access in bundle.accesses]
        # Noise exists...
        assert any(flags)
        # ...and it is interleaved: somewhere a wrong-path run is
        # followed by more correct-path fetches (A B | R S | C D).
        saw_sandwich = False
        for index in range(1, len(flags) - 1):
            if flags[index] and not flags[index - 1]:
                if False in flags[index:]:
                    saw_sandwich = True
                    break
        assert saw_sandwich

    def test_wrong_path_runs_are_bounded(self):
        from repro.pipeline.tracegen import generate_trace

        bundle = generate_trace("oltp-db2", instructions=60_000,
                                seed=3).bundle
        run = 0
        longest = 0
        for access in bundle.accesses:
            if access.wrong_path:
                run += 1
                longest = max(longest, run)
            else:
                run = 0
        # One injection is bounded by the fetch-queue-limited resolve
        # shadow (<= 11 blocks); adjacent injections can concatenate
        # when no new correct-path block intervenes, so allow a few.
        assert 0 < longest <= 64
