"""Shared fixtures: small cached traces and programs.

Trace generation is the expensive part of the suite, so traces are
generated once per session at a deliberately small scale; tests that
need different parameters build their own.

Hermeticity: unless the caller explicitly exported ``REPRO_TRACE_STORE``
(CI does, to cache traces across runs), the on-disk trace store is
redirected to a throwaway directory for the whole session, so test runs
never write archives into — or read state from — the user's real
``~/.cache/repro/traces``.
"""

from __future__ import annotations

import pytest

from repro.common.config import CacheConfig
from repro.pipeline.tracegen import generate_trace
from repro.trace.store import ensure_scratch_store
from repro.workloads.generator import build_program
from repro.workloads.spec import get_spec

ensure_scratch_store(prefix="repro-test-traces-")

#: Cache used across trace-level tests: small so misses are plentiful
#: even in short traces.
TEST_CACHE = CacheConfig(capacity_bytes=16 * 1024, associativity=2)

#: Trace length for shared fixtures.
TEST_INSTRUCTIONS = 120_000


@pytest.fixture(scope="session")
def oltp_trace():
    """A small OLTP trace shared by read-only tests."""
    return generate_trace("oltp-db2", instructions=TEST_INSTRUCTIONS, seed=11)


@pytest.fixture(scope="session")
def web_trace():
    """A small Web trace shared by read-only tests."""
    return generate_trace("web-apache", instructions=TEST_INSTRUCTIONS, seed=11)


@pytest.fixture(scope="session")
def dss_trace():
    """A small DSS trace shared by read-only tests."""
    return generate_trace("dss-qry2", instructions=TEST_INSTRUCTIONS, seed=11)


@pytest.fixture(scope="session")
def small_program():
    """A generated synthetic program shared by structural tests."""
    return build_program(get_spec("web-zeus"), seed=5)


@pytest.fixture()
def test_cache_config():
    """A fresh copy of the test cache configuration."""
    return TEST_CACHE


@pytest.fixture(scope="session")
def repo_root():
    """The repository checkout root (for checked-in scenario files,
    README docs checks, and other non-package artifacts)."""
    from pathlib import Path

    return Path(__file__).resolve().parent.parent
