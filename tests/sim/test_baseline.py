"""Vectorized baseline replay: bit-identical to the real cache model."""

import numpy as np
import pytest

from repro.cache.icache import InstructionCache
from repro.common.config import CacheConfig
from repro.sim.baseline import count_measured_misses, replay_baseline

CONFIGS = {
    "lru": CacheConfig(capacity_bytes=16 * 1024, associativity=2,
                       replacement="lru"),
    "fifo": CacheConfig(capacity_bytes=16 * 1024, associativity=2,
                        replacement="fifo"),
    "random": CacheConfig(capacity_bytes=16 * 1024, associativity=2,
                          replacement="random"),
    "lru-4way": CacheConfig(capacity_bytes=16 * 1024, associativity=4,
                            replacement="lru"),
    "direct-mapped": CacheConfig(capacity_bytes=16 * 1024, associativity=1,
                                 replacement="lru"),
}


def reference_replay(bundle, config):
    """Ground truth: drive the generic cache model access by access."""
    cache = InstructionCache(config)
    hits = np.zeros(len(bundle.access_block), dtype=np.bool_)
    for position, block in enumerate(bundle.access_block.tolist()):
        hits[position] = cache.access(block).hit
    return hits, cache.stats


class TestReplayEquivalence:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_hit_flags_and_stats_match_cache_model(self, oltp_trace, name):
        config = CONFIGS[name]
        bundle = oltp_trace.bundle
        expected_hits, expected_stats = reference_replay(bundle, config)
        replay = replay_baseline(bundle, config)
        assert np.array_equal(replay.hits, expected_hits)
        assert replay.stats == expected_stats

    def test_second_workload_lru(self, web_trace, test_cache_config):
        bundle = web_trace.bundle
        expected_hits, expected_stats = reference_replay(bundle,
                                                         test_cache_config)
        replay = replay_baseline(bundle, test_cache_config)
        assert np.array_equal(replay.hits, expected_hits)
        assert replay.stats == expected_stats


class TestMeasuredMissCounting:
    def test_matches_scalar_accounting(self, oltp_trace, test_cache_config):
        """The vectorized window/path/level masks equal the per-access
        branch accounting the trace walk used to do."""
        bundle = oltp_trace.bundle
        replay = replay_baseline(bundle, test_cache_config)
        warmup_fraction = 0.4
        boundary = int(len(bundle.access_block) * warmup_fraction)
        expected_misses = 0
        expected_levels = {}
        for position, (hit, wrong_path, level) in enumerate(zip(
                replay.hits.tolist(), bundle.access_wrong_path.tolist(),
                bundle.access_trap.tolist())):
            if position >= boundary and not wrong_path and not hit:
                expected_misses += 1
                expected_levels[level] = expected_levels.get(level, 0) + 1
        misses, per_level = count_measured_misses(bundle, replay.hits,
                                                  warmup_fraction)
        assert misses == expected_misses
        assert per_level == expected_levels

    def test_zero_warmup_counts_everything(self, oltp_trace,
                                           test_cache_config):
        replay = replay_baseline(oltp_trace.bundle, test_cache_config)
        misses, per_level = count_measured_misses(oltp_trace.bundle,
                                                  replay.hits, 0.0)
        assert misses == sum(per_level.values())
        assert misses > 0
