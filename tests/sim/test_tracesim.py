"""Trace-driven prefetch simulation."""

import pytest

from repro.common.config import CacheConfig
from repro.core.pif import ProactiveInstructionFetch
from repro.prefetch import make_prefetcher
from repro.prefetch.base import NullPrefetcher
from repro.sim.tracesim import run_prefetch_simulation
from repro.trace.bundle import TraceBundle
from repro.trace.records import FetchAccess, RetiredInstruction


def looping_bundle(blocks, repeats):
    """A bundle that walks ``blocks`` ``repeats`` times (no wrong path)."""
    accesses = []
    retires = []
    for _ in range(repeats):
        for block in blocks:
            accesses.append(FetchAccess(block, block * 64, 0, False))
            retires.append(RetiredInstruction(block * 64, 0))
    return TraceBundle(workload="crafted", core=0, seed=0,
                       retires=retires, accesses=accesses,
                       instructions=len(retires) * 4)


#: A capacity-thrashing loop: 256 far-apart blocks (one spatial region
#: each) against a 128-frame cache, spread evenly over the sets so the
#: misses are capacity misses a prefetcher *can* cover just in time.
THRASH = [i * 8 for i in range(256)]
TINY = CacheConfig(capacity_bytes=64 * 2 * 64, associativity=2)


class TestNullBaseline:
    def test_zero_coverage(self):
        bundle = looping_bundle(THRASH, repeats=8)
        result = run_prefetch_simulation(bundle, NullPrefetcher(),
                                         cache_config=TINY)
        assert result.coverage() == 0.0
        assert result.baseline_misses == result.remaining_misses
        assert result.baseline_misses > 0


class TestPIFOnPerfectLoop:
    def test_near_total_coverage(self):
        bundle = looping_bundle(THRASH, repeats=8)
        pif = ProactiveInstructionFetch()
        result = run_prefetch_simulation(bundle, pif, cache_config=TINY,
                                         warmup_fraction=0.3)
        assert result.coverage() > 0.9

    def test_prefetches_counted(self):
        bundle = looping_bundle(THRASH, repeats=8)
        result = run_prefetch_simulation(
            bundle, ProactiveInstructionFetch(), cache_config=TINY)
        assert result.prefetches_issued > 0


class TestAccounting:
    def test_per_level_counts_sum(self, oltp_trace, test_cache_config):
        result = run_prefetch_simulation(
            oltp_trace.bundle, NullPrefetcher(),
            cache_config=test_cache_config)
        assert sum(result.per_level_baseline.values()) == \
            result.baseline_misses
        assert sum(result.per_level_remaining.values()) == \
            result.remaining_misses

    def test_level_coverage_bounds(self, oltp_trace, test_cache_config):
        result = run_prefetch_simulation(
            oltp_trace.bundle, make_prefetcher("next-line"),
            cache_config=test_cache_config)
        for level in result.per_level_baseline:
            # Signed (unbounded below under pollution); at best every
            # baseline miss at the level is eliminated.
            assert result.level_coverage(level) <= 1.0

    def test_coverage_is_signed_not_clamped(self):
        """Regression: prefetch-induced pollution must surface as
        negative coverage instead of a silent 0.0."""
        from repro.sim.tracesim import PrefetchSimResult

        polluted = PrefetchSimResult(
            workload="crafted", prefetcher="bad", instructions=1000,
            baseline_misses=100, remaining_misses=150,
            per_level_baseline={0: 100}, per_level_remaining={0: 150})
        assert polluted.coverage() == pytest.approx(-0.5)
        assert polluted.level_coverage(0) == pytest.approx(-0.5)
        assert polluted.describe()["coverage"] == pytest.approx(-0.5)

    def test_describe_and_mpki(self, oltp_trace, test_cache_config):
        result = run_prefetch_simulation(
            oltp_trace.bundle, NullPrefetcher(),
            cache_config=test_cache_config)
        assert result.baseline_mpki() > 0
        assert set(result.describe()) == {
            "baseline_misses", "remaining_misses", "coverage",
            "prefetches_issued"}

    def test_issue_counter_windows_consistent(self, oltp_trace,
                                              test_cache_config):
        """Regression: ``prefetches_issued``, the engine's own issue
        counter and the cache's request counter all cover the same
        (whole-trace) window, so accuracy ratios between them line up."""
        engine = ProactiveInstructionFetch()
        result = run_prefetch_simulation(
            oltp_trace.bundle, engine, cache_config=test_cache_config,
            warmup_fraction=0.4)
        assert result.prefetches_issued == \
            result.cache_stats.prefetch_requests
        assert result.prefetches_issued == engine.stats.issued

    def test_rejects_bad_warmup(self, oltp_trace):
        with pytest.raises(ValueError):
            run_prefetch_simulation(oltp_trace.bundle, NullPrefetcher(),
                                    warmup_fraction=1.0)

    def test_alignment_check_fires_on_corrupt_bundle(self, test_cache_config):
        source = looping_bundle(THRASH[:16], repeats=2)
        bundle = TraceBundle(
            workload=source.workload, core=0, seed=0,
            retires=source.retires + [RetiredInstruction(0x999 * 64, 0)],
            accesses=source.accesses, instructions=source.instructions)
        with pytest.raises(RuntimeError):
            run_prefetch_simulation(bundle, NullPrefetcher(),
                                    cache_config=test_cache_config)


class TestCompetitiveOrdering:
    def test_pif_beats_baselines_on_server_trace(self, web_trace,
                                                 test_cache_config):
        bundle = web_trace.bundle
        coverages = {}
        for name in ("next-line", "tifs"):
            result = run_prefetch_simulation(
                bundle, make_prefetcher(name),
                cache_config=test_cache_config)
            coverages[name] = result.coverage()
        pif_result = run_prefetch_simulation(
            bundle, ProactiveInstructionFetch(),
            cache_config=test_cache_config)
        coverages["pif"] = pif_result.coverage()
        assert coverages["pif"] > coverages["next-line"]
        assert coverages["pif"] > coverages["tifs"] - 0.02
