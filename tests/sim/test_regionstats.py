"""Spatial-region characterization statistics."""

import pytest

from repro.common.addressing import RegionGeometry
from repro.core.spatial import SpatialRegionRecord
from repro.sim.regionstats import (
    WIDE_GEOMETRY,
    contiguous_groups,
    density_distribution,
    discontinuity_distribution,
    merge_distributions,
    regions_of,
    trigger_offset_profile,
)
from repro.trace.records import RetiredInstruction


def retires_of(blocks):
    return [RetiredInstruction(b * 64, 0) for b in blocks]


class TestContiguousGroups:
    def test_single_block(self):
        record = SpatialRegionRecord(100 * 64, 0, False)
        assert contiguous_groups(record, WIDE_GEOMETRY) == 1

    def test_dense_run_is_one_group(self):
        geometry = RegionGeometry(2, 5)
        bits = sum(1 << geometry.bit_index(o) for o in (1, 2, 3))
        record = SpatialRegionRecord(100 * 64, bits, False)
        assert contiguous_groups(record, geometry) == 1

    def test_gap_makes_two_groups(self):
        geometry = RegionGeometry(2, 5)
        bits = (1 << geometry.bit_index(1)) | (1 << geometry.bit_index(4))
        record = SpatialRegionRecord(100 * 64, bits, False)
        assert contiguous_groups(record, geometry) == 2

    def test_preceding_gap(self):
        geometry = RegionGeometry(2, 5)
        bits = 1 << geometry.bit_index(-2)
        record = SpatialRegionRecord(100 * 64, bits, False)
        assert contiguous_groups(record, geometry) == 2


class TestDistributions:
    def test_sequential_stream_is_dense(self):
        # 32 sequential blocks fill a wide region completely.
        distribution = density_distribution(retires_of(range(100, 132)))
        assert distribution["17-32"] > 0.4

    def test_scattered_stream_is_sparse(self):
        blocks = [i * 1000 for i in range(20)]
        distribution = density_distribution(retires_of(blocks))
        assert distribution["1"] == 1.0

    def test_density_sums_to_one(self, oltp_trace):
        distribution = density_distribution(oltp_trace.bundle.retires[:20000])
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_discontinuity_sums_to_one(self, oltp_trace):
        distribution = discontinuity_distribution(
            oltp_trace.bundle.retires[:20000])
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_empty_stream(self):
        assert sum(density_distribution([]).values()) == 0.0
        assert sum(discontinuity_distribution([]).values()) == 0.0

    def test_paper_shape_on_server_stream(self, web_trace):
        """>50% of regions multi-block; a visible minority discontinuous."""
        retires = web_trace.bundle.retires[:30000]
        density = density_distribution(retires)
        assert 1.0 - density["1"] > 0.4
        groups = discontinuity_distribution(retires)
        assert 0.02 < 1.0 - groups["1"] < 0.7


class TestOffsetProfile:
    def test_sequential_stream_peaks_after_trigger(self):
        # Runs of mixed lengths: +1 is reached by every multi-block run,
        # +8 only by the longest, so frequency decays with offset.
        blocks = (list(range(100, 103)) + list(range(500, 509))
                  + list(range(900, 905)) + list(range(1300, 1302)))
        profile = trigger_offset_profile(retires_of(blocks))
        assert profile[1] > profile[8]
        assert profile.get(-4, 0.0) == 0.0

    def test_profile_fractions_sum_to_one(self, oltp_trace):
        profile = trigger_offset_profile(oltp_trace.bundle.retires[:20000])
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_paper_shape_plus_one_dominates(self, oltp_trace):
        profile = trigger_offset_profile(oltp_trace.bundle.retires[:20000])
        assert profile[1] == max(profile.values())


class TestHelpers:
    def test_regions_of_round_trips_footprint(self):
        blocks = [100, 101, 500, 501, 502]
        records = regions_of(retires_of(blocks), WIDE_GEOMETRY)
        covered = set()
        for record in records:
            covered.update(record.blocks(WIDE_GEOMETRY))
        assert set(blocks) <= covered

    def test_merge_distributions(self):
        merged = merge_distributions([{"a": 1.0}, {"a": 0.0, "b": 0.5}])
        assert merged["a"] == pytest.approx(0.5)
        assert merged["b"] == pytest.approx(0.25)

    def test_merge_empty(self):
        assert merge_distributions([]) == {}
