"""Coverage oracles: crafted event sequences with known answers."""

import pytest

from repro.sim.coverage import (
    PIFPredictorOracle,
    StreamEvent,
    TemporalStreamOracle,
    build_view_events,
    measure_pif_predictability,
    measure_stream_predictability,
)
from repro.trace.records import StreamKind


def miss(block, tl=0):
    return StreamEvent(block, True, True, tl)


def hit(block, tl=0):
    return StreamEvent(block, False, True, tl)


class TestTemporalStreamOracle:
    def test_repeated_miss_sequence_predicted_after_first_pass(self):
        oracle = TemporalStreamOracle(window=8)
        sequence = [miss(b) for b in (10, 20, 30, 40)]
        oracle.process(sequence * 3)
        result = oracle.result
        # First pass: 4 unpredicted.  Second pass: the head re-triggers
        # (unpredicted), the remaining 3 are predicted.  The second
        # pass's own records extend the history contiguously, so the
        # still-active stream carries into the third pass and predicts
        # all 4 of its misses: 3 + 4 = 7.
        assert result.total_misses == 12
        assert result.predicted_misses == 7

    def test_no_prediction_for_unique_misses(self):
        oracle = TemporalStreamOracle()
        result = oracle.process([miss(b) for b in range(20)])
        assert result.predicted_misses == 0

    def test_hits_advance_streams(self):
        oracle = TemporalStreamOracle(window=4)
        training = [miss(1), miss(2), miss(3)]
        replay = [miss(1), hit(2), miss(3)]
        result = oracle.process(training + replay)
        # 3 appears in the window (advanced past by the hit on 2).
        assert result.predicted_misses == 1

    def test_wrong_path_misses_excluded_from_denominator(self):
        oracle = TemporalStreamOracle()
        events = [StreamEvent(5, True, False, 0), miss(6)]
        result = oracle.process(events)
        assert result.total_misses == 1

    def test_jump_histogram_weighted_by_matches(self):
        oracle = TemporalStreamOracle(window=8)
        sequence = [miss(b) for b in (10, 20, 30, 40)]
        oracle.process(sequence * 2)
        assert sum(oracle.result.jump_histogram.values()) == 3

    def test_counting_flag_gates_denominator(self):
        oracle = TemporalStreamOracle()
        oracle.counting = False
        oracle.observe(miss(1))
        oracle.counting = True
        oracle.observe(miss(2))
        assert oracle.result.total_misses == 1

    def test_bounded_history_forgets(self):
        oracle = TemporalStreamOracle(window=4, history_entries=4)
        # Train, then push the training out of the live window.
        oracle.process([miss(b) for b in (10, 20, 30)])
        oracle.process([miss(b) for b in (100, 200, 300, 400)])
        before = oracle.result.predicted_misses
        oracle.process([miss(b) for b in (10, 20, 30)])
        # The 10/20/30 stream was overwritten: no predictions possible.
        assert oracle.result.predicted_misses == before

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TemporalStreamOracle(streams=0)


class TestPIFPredictorOracle:
    def test_region_stream_predicts_repeat(self):
        oracle = PIFPredictorOracle(window_regions=4)
        stream = [(b * 64, True) for b in (100, 300, 500, 700)]
        for _pass_index in range(3):
            for pc, _ in stream:
                oracle.observe(pc, 0, is_miss=True)
        oracle.finish()
        result = oracle.result
        assert result.total_misses == 12
        # Later passes predict everything but the stream head.
        assert result.predicted_misses >= 6

    def test_intra_region_blocks_count_as_predicted(self):
        oracle = PIFPredictorOracle(window_regions=2)
        stream = [100, 101, 102, 500]
        for _ in range(2):
            for block in stream:
                oracle.observe(block * 64, 0, is_miss=True)
        oracle.finish()
        # Second pass: 101, 102 are in the replayed region's bit vector.
        assert oracle.result.predicted_misses >= 2


class TestViewEvents:
    def test_views_share_denominator(self, web_trace, test_cache_config):
        views = build_view_events(web_trace.bundle, test_cache_config)
        miss_count = sum(1 for e in views.retire if e.is_miss)
        assert miss_count == views.correct_path_misses
        assert len(views.miss) >= views.correct_path_misses

    def test_for_kind_routing(self, web_trace, test_cache_config):
        views = build_view_events(web_trace.bundle, test_cache_config)
        assert views.for_kind(StreamKind.MISS) is views.miss
        assert views.for_kind(StreamKind.RETIRE_SEP) is views.retire
        with pytest.raises(ValueError):
            views.for_kind("imaginary")

    def test_retire_events_exclude_wrong_path(self, web_trace,
                                              test_cache_config):
        views = build_view_events(web_trace.bundle, test_cache_config)
        assert all(e.correct_path for e in views.retire)
        assert len(views.retire) == len(web_trace.bundle.retires)


class TestPaperOrdering:
    def test_figure2_ordering_on_web(self, web_trace, test_cache_config):
        """The paper's central claim at trace scale: retire-order
        streams are more predictable than fetch-order, which beats the
        miss stream (small tolerance for sampling noise)."""
        bundle = web_trace.bundle
        views = build_view_events(bundle, test_cache_config)
        coverage = {
            kind: measure_stream_predictability(
                bundle, kind, cache_config=test_cache_config,
                view_events=views).coverage()
            for kind in StreamKind.ALL
        }
        assert coverage[StreamKind.RETIRE] > coverage[StreamKind.MISS] - 0.02
        assert coverage[StreamKind.RETIRE_SEP] >= \
            coverage[StreamKind.RETIRE] - 0.01

    def test_pif_oracle_beats_block_oracle_on_dss(self, dss_trace,
                                                  test_cache_config):
        """Region compaction must help loopy DSS streams (Section 3.2)."""
        bundle = dss_trace.bundle
        views = build_view_events(bundle, test_cache_config)
        block_level = measure_stream_predictability(
            bundle, StreamKind.RETIRE_SEP, cache_config=test_cache_config,
            view_events=views).coverage()
        region_level = measure_pif_predictability(
            bundle, cache_config=test_cache_config,
            view_events=views).coverage()
        assert region_level > block_level - 0.03
