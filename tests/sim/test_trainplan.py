"""PIF train plan: differential lock against the real compactors, and
the on-disk sidecar's cache semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.addressing import RegionGeometry
from repro.core.spatial import SpatialCompactor
from repro.core.temporal import TemporalCompactor
from repro.sim import trainplan as trainplan_module
from repro.sim.trainplan import (PIFTrainPlan, build_train_plan,
                                 train_plan_for)
from repro.trace.bundle import TraceBundle


def reference_plan(retire_pcs, retire_traps, geometry, block_bytes,
                   separate, temporal_entries) -> PIFTrainPlan:
    """The schedule produced by driving the *real* compactor objects —
    the semantics the optimized builder must match exactly."""
    channels = {}
    at, key, trigger, survives = [], [], [], []
    record_untagged, record_tagged = [], []
    for index, (pc, trap_level) in enumerate(zip(retire_pcs, retire_traps)):
        channel_key = trap_level if separate else 0
        state = channels.get(channel_key)
        if state is None:
            state = (SpatialCompactor(geometry, block_bytes),
                     TemporalCompactor(temporal_entries))
            channels[channel_key] = state
        spatial, temporal = state
        was_open = spatial._trigger_pc is not None
        region = spatial.feed(pc, False)
        if not was_open:
            at.append(index)
            key.append(channel_key)
            trigger.append(None)
            survives.append(False)
            record_untagged.append(None)
            record_tagged.append(None)
        elif region is not None:
            at.append(index)
            key.append(channel_key)
            trigger.append(region.trigger_pc)
            survived = temporal.feed(region) is not None
            survives.append(survived)
            if survived:
                record_untagged.append(region)
                record_tagged.append(region._replace(tagged=True))
            else:
                record_untagged.append(None)
                record_tagged.append(None)
    return PIFTrainPlan(at=at, key=key, trigger=trigger, survives=survives,
                        record_untagged=record_untagged,
                        record_tagged=record_tagged)


_pcs = st.integers(min_value=0, max_value=1 << 20)
_levels = st.integers(min_value=0, max_value=2)


class TestBuilderDifferential:
    @settings(max_examples=60, deadline=None)
    @given(stream=st.lists(st.tuples(_pcs, _levels), max_size=200),
           separate=st.booleans(),
           temporal_entries=st.sampled_from([0, 1, 4]))
    def test_matches_real_compactors(self, stream, separate,
                                     temporal_entries):
        pcs = [pc for pc, _ in stream]
        traps = [trap for _, trap in stream]
        geometry = RegionGeometry()
        built = build_train_plan(pcs, traps, geometry, 64, separate,
                                 temporal_entries)
        expected = reference_plan(pcs, traps, geometry, 64, separate,
                                  temporal_entries)
        assert built == expected

    def test_real_trace_schedule(self, oltp_trace):
        bundle = oltp_trace.bundle
        pcs = bundle.retire_pc.tolist()
        traps = bundle.retire_trap.tolist()
        built = build_train_plan(pcs, traps, RegionGeometry(), 64, True, 4)
        expected = reference_plan(pcs, traps, RegionGeometry(), 64, True, 4)
        assert built == expected
        assert built.at == sorted(built.at)  # one event max per index


def small_bundle():
    pcs = np.asarray([0x1000, 0x1040, 0x9000, 0x9040, 0x1000, 0x1040,
                      0x20000, 0x1000], dtype=np.int64)
    traps = np.zeros(len(pcs), dtype=np.uint8)
    return TraceBundle.from_columns(
        workload="plan-test", core=0, seed=1, block_bytes=64,
        retire_pc=pcs, retire_trap=traps,
        access_block=np.asarray([], dtype=np.int64),
        access_pc=np.asarray([], dtype=np.int64),
        access_trap=np.asarray([], dtype=np.uint8),
        access_wrong_path=np.asarray([], dtype=np.bool_),
        instructions=8)


class TestSidecar:
    def test_roundtrip_via_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        bundle = small_bundle()
        plan = train_plan_for(bundle, RegionGeometry(), 64, True, 4)
        sidecars = list((tmp_path / "plans").glob("*.npz"))
        assert len(sidecars) == 1
        # A second bundle instance (fresh derived cache) must load the
        # identical plan from the sidecar instead of rebuilding.
        calls = []
        real = trainplan_module.build_train_plan
        monkeypatch.setattr(trainplan_module, "build_train_plan",
                            lambda *args: calls.append(args) or real(*args))
        loaded = train_plan_for(small_bundle(), RegionGeometry(), 64,
                                True, 4)
        assert not calls
        assert loaded == plan

    def test_corrupt_sidecar_rebuilds(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        plan = train_plan_for(small_bundle(), RegionGeometry(), 64, True, 4)
        sidecar = next((tmp_path / "plans").glob("*.npz"))
        sidecar.write_bytes(b"not an archive")
        rebuilt = train_plan_for(small_bundle(), RegionGeometry(), 64,
                                 True, 4)
        assert rebuilt == plan
        # The corrupt file was healed: deleted and rewritten.
        assert next((tmp_path / "plans").glob("*.npz")).stat().st_size > 20

    def test_disabled_store_builds_in_memory(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        plan = train_plan_for(small_bundle(), RegionGeometry(), 64, True, 4)
        assert plan.at  # built fine, nothing persisted
        assert not (tmp_path / "plans").exists()

    def test_distinct_params_distinct_sidecars(self, monkeypatch,
                                               tmp_path):
        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        train_plan_for(small_bundle(), RegionGeometry(), 64, True, 4)
        train_plan_for(small_bundle(), RegionGeometry(), 64, False, 4)
        train_plan_for(small_bundle(), RegionGeometry(), 64, True, 0)
        assert len(list((tmp_path / "plans").glob("*.npz"))) == 3

    def test_gc_all_clears_plans(self, monkeypatch, tmp_path):
        from repro.trace.store import TraceStore

        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        train_plan_for(small_bundle(), RegionGeometry(), 64, True, 4)
        store = TraceStore(tmp_path)
        assert store.gc() == []  # default sweep leaves plans alone
        removed = store.gc(remove_all=True)
        assert removed and not list((tmp_path / "plans").glob("*"))


class TestPlanEquality:
    def test_memoized_in_bundle(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        bundle = small_bundle()
        first = train_plan_for(bundle, RegionGeometry(), 64, True, 4)
        second = train_plan_for(bundle, RegionGeometry(), 64, True, 4)
        assert first is second

    def test_params_key_the_memo(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        bundle = small_bundle()
        separated = train_plan_for(bundle, RegionGeometry(), 64, True, 4)
        merged = train_plan_for(bundle, RegionGeometry(), 64, False, 4)
        assert separated is not merged


@pytest.mark.parametrize("preceding,succeeding", [(0, 0), (2, 5), (7, 0)])
def test_geometries_match_reference(preceding, succeeding):
    pcs = [i * 64 for i in (0, 1, 2, 50, 51, 0, 3, 100, 1)]
    traps = [0] * len(pcs)
    geometry = RegionGeometry(preceding=preceding, succeeding=succeeding)
    assert build_train_plan(pcs, traps, geometry, 64, True, 4) == \
        reference_plan(pcs, traps, geometry, 64, True, 4)
