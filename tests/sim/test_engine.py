"""Single-pass multi-prefetcher engine: equivalence and lane isolation.

The contract of :func:`repro.sim.engine.run_multi_prefetch_simulation`
is that one shared trace walk produces, for every lane, *exactly* the
result a standalone :func:`run_prefetch_simulation` call would have —
same misses, same per-level counts, same coverage, same issue counts.
"""

import pytest

from repro.common.config import CacheConfig, PIFConfig
from repro.core.pif import ProactiveInstructionFetch
from repro.prefetch import make_prefetcher
from repro.sim.engine import run_multi_prefetch_simulation
from repro.sim.tracesim import run_prefetch_simulation

#: Engines compared in the shared walk (the competitive set + stride).
ENGINE_SET = ("pif", "next-line", "stride", "tifs")

CACHE = CacheConfig(capacity_bytes=16 * 1024, associativity=2)


def build_engine(name: str):
    if name == "pif":
        return ProactiveInstructionFetch(PIFConfig(sab_window_regions=3))
    return make_prefetcher(name)


def assert_results_identical(single, multi):
    assert single.prefetcher == multi.prefetcher
    assert single.baseline_misses == multi.baseline_misses
    assert single.remaining_misses == multi.remaining_misses
    assert single.per_level_baseline == multi.per_level_baseline
    assert single.per_level_remaining == multi.per_level_remaining
    assert single.prefetches_issued == multi.prefetches_issued
    assert single.coverage() == multi.coverage()
    assert single.cache_stats.demand_misses == \
        multi.cache_stats.demand_misses
    assert single.cache_stats.prefetch_requests == \
        multi.cache_stats.prefetch_requests
    assert single.cache_stats.useful_prefetches == \
        multi.cache_stats.useful_prefetches


class TestEquivalence:
    def test_matches_sequential_runs_per_engine(self, oltp_trace):
        """One shared walk == N sequential walks, bit for bit."""
        bundle = oltp_trace.bundle
        multi = run_multi_prefetch_simulation(
            bundle, [build_engine(name) for name in ENGINE_SET],
            cache_config=CACHE, warmup_fraction=0.4)
        assert [r.prefetcher for r in multi] == \
            [build_engine(n).name for n in ENGINE_SET]
        for name, multi_result in zip(ENGINE_SET, multi):
            single = run_prefetch_simulation(
                bundle, build_engine(name), cache_config=CACHE,
                warmup_fraction=0.4)
            assert_results_identical(single, multi_result)

    def test_lanes_share_one_baseline(self, oltp_trace):
        """Lanes with the same cache configuration report the same
        baseline, computed once."""
        results = run_multi_prefetch_simulation(
            oltp_trace.bundle,
            [build_engine("pif"), build_engine("next-line")],
            cache_config=CACHE, warmup_fraction=0.4)
        assert results[0].baseline_misses == results[1].baseline_misses
        assert results[0].baseline_stats is results[1].baseline_stats

    def test_per_lane_cache_configs(self, oltp_trace):
        """Per-lane cache overrides give each lane its own baseline,
        equal to what a sequential run at that configuration reports."""
        small = CacheConfig(capacity_bytes=8 * 1024, associativity=2)
        results = run_multi_prefetch_simulation(
            oltp_trace.bundle,
            [build_engine("next-line"), build_engine("next-line")],
            cache_config=CACHE, cache_configs=[None, small],
            warmup_fraction=0.4)
        assert results[1].baseline_misses > results[0].baseline_misses
        single = run_prefetch_simulation(
            oltp_trace.bundle, build_engine("next-line"),
            cache_config=small, warmup_fraction=0.4)
        assert_results_identical(single, results[1])


class TestValidation:
    def test_rejects_bad_warmup(self, oltp_trace):
        with pytest.raises(ValueError):
            run_multi_prefetch_simulation(
                oltp_trace.bundle, [build_engine("next-line")],
                warmup_fraction=1.0)

    def test_rejects_mismatched_cache_configs(self, oltp_trace):
        with pytest.raises(ValueError):
            run_multi_prefetch_simulation(
                oltp_trace.bundle, [build_engine("next-line")],
                cache_configs=[CACHE, CACHE])

    def test_empty_engine_list_is_a_noop(self, oltp_trace):
        assert run_multi_prefetch_simulation(oltp_trace.bundle, []) == []
