"""Single-pass multi-prefetcher engine: equivalence and lane isolation.

The contract of :func:`repro.sim.engine.run_multi_prefetch_simulation`
is that one shared trace walk produces, for every lane, *exactly* the
result a standalone :func:`run_prefetch_simulation` call would have —
same misses, same per-level counts, same coverage, same issue counts.
"""

import pytest

from repro.common.config import CacheConfig, PIFConfig
from repro.core.pif import ProactiveInstructionFetch
from repro.prefetch import make_prefetcher
from repro.sim.engine import run_multi_prefetch_simulation
from repro.sim.tracesim import run_prefetch_simulation

#: Engines compared in the shared walk (the competitive set + stride).
ENGINE_SET = ("pif", "next-line", "stride", "tifs")

CACHE = CacheConfig(capacity_bytes=16 * 1024, associativity=2)


def build_engine(name: str):
    if name == "pif":
        return ProactiveInstructionFetch(PIFConfig(sab_window_regions=3))
    return make_prefetcher(name)


def assert_results_identical(single, multi):
    assert single.prefetcher == multi.prefetcher
    assert single.baseline_misses == multi.baseline_misses
    assert single.remaining_misses == multi.remaining_misses
    assert single.per_level_baseline == multi.per_level_baseline
    assert single.per_level_remaining == multi.per_level_remaining
    assert single.prefetches_issued == multi.prefetches_issued
    assert single.coverage() == multi.coverage()
    assert single.cache_stats.demand_misses == \
        multi.cache_stats.demand_misses
    assert single.cache_stats.prefetch_requests == \
        multi.cache_stats.prefetch_requests
    assert single.cache_stats.useful_prefetches == \
        multi.cache_stats.useful_prefetches


class TestEquivalence:
    def test_matches_sequential_runs_per_engine(self, oltp_trace):
        """One shared walk == N sequential walks, bit for bit."""
        bundle = oltp_trace.bundle
        multi = run_multi_prefetch_simulation(
            bundle, [build_engine(name) for name in ENGINE_SET],
            cache_config=CACHE, warmup_fraction=0.4)
        assert [r.prefetcher for r in multi] == \
            [build_engine(n).name for n in ENGINE_SET]
        for name, multi_result in zip(ENGINE_SET, multi):
            single = run_prefetch_simulation(
                bundle, build_engine(name), cache_config=CACHE,
                warmup_fraction=0.4)
            assert_results_identical(single, multi_result)

    def test_lanes_share_one_baseline(self, oltp_trace):
        """Lanes with the same cache configuration report the same
        baseline, computed once."""
        results = run_multi_prefetch_simulation(
            oltp_trace.bundle,
            [build_engine("pif"), build_engine("next-line")],
            cache_config=CACHE, warmup_fraction=0.4)
        assert results[0].baseline_misses == results[1].baseline_misses
        assert results[0].baseline_stats is results[1].baseline_stats

    def test_per_lane_cache_configs(self, oltp_trace):
        """Per-lane cache overrides give each lane its own baseline,
        equal to what a sequential run at that configuration reports."""
        small = CacheConfig(capacity_bytes=8 * 1024, associativity=2)
        results = run_multi_prefetch_simulation(
            oltp_trace.bundle,
            [build_engine("next-line"), build_engine("next-line")],
            cache_config=CACHE, cache_configs=[None, small],
            warmup_fraction=0.4)
        assert results[1].baseline_misses > results[0].baseline_misses
        single = run_prefetch_simulation(
            oltp_trace.bundle, build_engine("next-line"),
            cache_config=small, warmup_fraction=0.4)
        assert_results_identical(single, results[1])


class TestValidation:
    def test_rejects_bad_warmup(self, oltp_trace):
        with pytest.raises(ValueError):
            run_multi_prefetch_simulation(
                oltp_trace.bundle, [build_engine("next-line")],
                warmup_fraction=1.0)

    def test_rejects_mismatched_cache_configs(self, oltp_trace):
        with pytest.raises(ValueError):
            run_multi_prefetch_simulation(
                oltp_trace.bundle, [build_engine("next-line")],
                cache_configs=[CACHE, CACHE])

    def test_empty_engine_list_is_a_noop(self, oltp_trace):
        assert run_multi_prefetch_simulation(oltp_trace.bundle, []) == []


# ----------------------------------------------------------------------
# Kernel differential locks: fast (flat-array walkers, fused engines)
# vs reference (object-model cache + list protocol) must be
# bit-identical for every prefetcher and replacement policy.

from repro.core.pif import AccessOrderPIF  # noqa: E402
from repro.sim.engine import resolve_kernel  # noqa: E402

#: Every engine shape the fast kernel specializes or falls back on:
#: fused walkers (next-line, stride, discontinuity), hook-driven inline
#: walker (pif, tifs, none), subclass fallback (AccessOrderPIF must NOT
#: take the fused path), and both next-line triggers.
ALL_ENGINES = ("pif", "pif-no-tlsep", "next-line", "next-line-miss",
               "stride", "discontinuity", "tifs", "none")


def build_matrix_engines():
    engines = [build_engine("pif")
               if name == "pif" else make_prefetcher(name)
               for name in ALL_ENGINES]
    engines.append(AccessOrderPIF(PIFConfig(sab_window_regions=3)))
    return engines


def assert_full_lane_identity(ref, fast):
    assert ref.prefetcher == fast.prefetcher
    assert ref.baseline_misses == fast.baseline_misses
    assert ref.remaining_misses == fast.remaining_misses, ref.prefetcher
    assert ref.per_level_baseline == fast.per_level_baseline
    assert ref.per_level_remaining == fast.per_level_remaining, ref.prefetcher
    assert ref.prefetches_issued == fast.prefetches_issued, ref.prefetcher
    assert ref.cache_stats == fast.cache_stats, ref.prefetcher
    assert ref.baseline_stats == fast.baseline_stats


class TestKernelEquivalence:
    @pytest.mark.parametrize("replacement", ["lru", "fifo", "random"])
    def test_every_prefetcher_every_policy(self, oltp_trace, replacement):
        """The full engine matrix, fast vs reference, one policy at a
        time — per-lane results and prefetcher counters bit-identical."""
        config = CacheConfig(capacity_bytes=16 * 1024, associativity=2,
                             replacement=replacement)
        ref_engines = build_matrix_engines()
        fast_engines = build_matrix_engines()
        ref = run_multi_prefetch_simulation(
            oltp_trace.bundle, ref_engines, cache_config=config,
            warmup_fraction=0.4, kernel="reference")
        fast = run_multi_prefetch_simulation(
            oltp_trace.bundle, fast_engines, cache_config=config,
            warmup_fraction=0.4, kernel="fast")
        for ref_result, fast_result in zip(ref, fast):
            assert_full_lane_identity(ref_result, fast_result)
        for ref_engine, fast_engine in zip(ref_engines, fast_engines):
            assert ref_engine.stats == fast_engine.stats, ref_engine.name

    @pytest.mark.parametrize("associativity,capacity",
                             [(1, 8 * 1024), (4, 16 * 1024)])
    def test_generic_walker_geometries(self, oltp_trace, associativity,
                                       capacity):
        """Non-2-way geometries take the generic (non-inlined) walker
        and must still match the reference exactly."""
        config = CacheConfig(capacity_bytes=capacity,
                             associativity=associativity)
        ref = run_multi_prefetch_simulation(
            oltp_trace.bundle, build_matrix_engines(), cache_config=config,
            warmup_fraction=0.4, kernel="reference")
        fast = run_multi_prefetch_simulation(
            oltp_trace.bundle, build_matrix_engines(), cache_config=config,
            warmup_fraction=0.4, kernel="fast")
        for ref_result, fast_result in zip(ref, fast):
            assert_full_lane_identity(ref_result, fast_result)

    def test_kernel_resolution(self, monkeypatch):
        assert resolve_kernel(None) == "fast"
        assert resolve_kernel("reference") == "reference"
        monkeypatch.setenv("REPRO_SIM_KERNEL", "reference")
        assert resolve_kernel(None) == "reference"
        monkeypatch.delenv("REPRO_SIM_KERNEL")
        with pytest.raises(ValueError):
            resolve_kernel("vectorized")

    def test_rejects_unknown_kernel(self, oltp_trace):
        with pytest.raises(ValueError):
            run_multi_prefetch_simulation(
                oltp_trace.bundle, [build_engine("next-line")],
                kernel="sideways")


class TestWalkerSelection:
    """The fast kernel picks the right specialized walker per lane."""

    def test_fused_and_fallback_selection(self):
        from repro.cache.icache import InstructionCache
        from repro.sim.engine import (
            _FUSED_WALKERS,
            _Lane,
            _select_walker,
            _walk_lane_generic,
            _walk_lane_inline2,
        )

        def lane_for(prefetcher, config=CACHE):
            return _Lane(prefetcher, InstructionCache(config), None)

        assert _select_walker(lane_for(make_prefetcher("next-line"))) is \
            _FUSED_WALKERS[type(make_prefetcher("next-line"))]
        assert _select_walker(lane_for(make_prefetcher("tifs"))) is \
            _walk_lane_inline2
        assert _select_walker(lane_for(build_engine("pif"))) is \
            _FUSED_WALKERS[type(build_engine("pif"))]
        # Subclasses must not inherit a fused walker (AccessOrderPIF
        # must fall back to the hook-driven walker, not replay the
        # retire-order train plan).
        assert AccessOrderPIF not in _FUSED_WALKERS
        assert _select_walker(lane_for(
            AccessOrderPIF(PIFConfig(sab_window_regions=3)))) is \
            _walk_lane_inline2
        # Non-2-way and random policies fall back to the generic walker.
        four_way = CacheConfig(capacity_bytes=16 * 1024, associativity=4)
        assert _select_walker(
            lane_for(make_prefetcher("next-line"), four_way)) is \
            _walk_lane_generic
        rand = CacheConfig(capacity_bytes=16 * 1024, associativity=2,
                           replacement="random")
        assert _select_walker(
            lane_for(make_prefetcher("next-line"), rand)) is \
            _walk_lane_generic


class TestListApiOverrides:
    """A subclass that overrides only the list-returning hook of a
    native-``_into`` engine must still be honored by the fast kernel
    (the hook resolver bridges it instead of binding the inherited
    native ``on_demand_access_into``)."""

    def test_subclass_filter_is_honored(self, oltp_trace):
        from repro.prefetch.nextline import NextLinePrefetcher

        class EvenOnlyNextLine(NextLinePrefetcher):
            name = "next-line-even"

            def on_demand_access(self, block, pc, trap_level, hit,
                                 was_prefetched):
                candidates = super().on_demand_access(
                    block, pc, trap_level, hit, was_prefetched)
                return [b for b in candidates if b % 2 == 0]

        fast = run_prefetch_simulation(
            oltp_trace.bundle, EvenOnlyNextLine(), cache_config=CACHE,
            warmup_fraction=0.4)
        reference = run_multi_prefetch_simulation(
            oltp_trace.bundle, [EvenOnlyNextLine()], cache_config=CACHE,
            warmup_fraction=0.4, kernel="reference")[0]
        plain = run_prefetch_simulation(
            oltp_trace.bundle, make_prefetcher("next-line"),
            cache_config=CACHE, warmup_fraction=0.4)
        # Identical across kernels, and visibly different from the
        # unfiltered engine (the filter actually ran).
        assert fast.prefetches_issued == reference.prefetches_issued
        assert fast.remaining_misses == reference.remaining_misses
        assert fast.cache_stats == reference.cache_stats
        assert fast.prefetches_issued < plain.prefetches_issued

    def test_hook_resolver_directions(self):
        from repro.prefetch.base import demand_access_hook
        from repro.prefetch.stride import StridePrefetcher

        native = StridePrefetcher()
        assert demand_access_hook(native) == native.on_demand_access_into

        class Filtered(StridePrefetcher):
            def on_demand_access(self, block, pc, trap_level, hit,
                                 was_prefetched):
                return []

        bridged = demand_access_hook(Filtered())
        out = []
        assert bridged(1, 64, 0, False, False, out) == 0

        # An _into-only subclass keeps its native hook (AccessOrderPIF
        # pattern).
        engine = AccessOrderPIF(PIFConfig(sab_window_regions=3))
        assert demand_access_hook(engine) == engine.on_demand_access_into
