"""Timing model: UIPC, stalls, speedups."""

import pytest

from repro.common.config import CacheConfig, SystemConfig
from repro.core.pif import ProactiveInstructionFetch
from repro.prefetch import make_prefetcher
from repro.prefetch.base import NullPrefetcher
from repro.sim.timing import run_timing_simulation, speedup_comparison
from tests.sim.test_tracesim import THRASH, TINY, looping_bundle


def tiny_system():
    from dataclasses import replace

    return replace(SystemConfig(), l1i=TINY)


class TestTimingBasics:
    def test_perfect_cache_has_no_stalls(self):
        bundle = looping_bundle(THRASH, repeats=6)
        result = run_timing_simulation(bundle, None, tiny_system(),
                                       perfect_cache=True)
        assert result.stall_cycles == 0.0
        assert result.prefetcher == "perfect"

    def test_baseline_stalls_on_thrash(self):
        bundle = looping_bundle(THRASH, repeats=6)
        result = run_timing_simulation(bundle, NullPrefetcher(),
                                       tiny_system())
        assert result.stall_cycles > 0
        assert result.uipc() < 3.0

    def test_uipc_bounded_by_width(self, oltp_trace, test_cache_config):
        from dataclasses import replace

        system = replace(SystemConfig(), l1i=test_cache_config)
        result = run_timing_simulation(oltp_trace.bundle, NullPrefetcher(),
                                       system)
        assert 0.0 < result.uipc() <= system.pipeline.retire_width

    def test_stall_fraction_consistent(self):
        bundle = looping_bundle(THRASH, repeats=6)
        result = run_timing_simulation(bundle, NullPrefetcher(),
                                       tiny_system())
        assert 0.0 <= result.stall_fraction() < 1.0

    def test_rejects_bad_warmup(self):
        bundle = looping_bundle(THRASH, repeats=2)
        with pytest.raises(ValueError):
            run_timing_simulation(bundle, None, warmup_fraction=-0.1)

    def test_rejects_empty_trace(self):
        from repro.trace.bundle import TraceBundle

        with pytest.raises(ValueError):
            run_timing_simulation(
                TraceBundle(workload="e", core=0, seed=0), None)


class TestOrdering:
    def test_prefetching_improves_uipc_on_thrash(self):
        bundle = looping_bundle(THRASH, repeats=6)
        baseline = run_timing_simulation(bundle, NullPrefetcher(),
                                         tiny_system())
        prefetched = run_timing_simulation(
            bundle, ProactiveInstructionFetch(), tiny_system())
        assert prefetched.uipc() > baseline.uipc()

    def test_speedup_comparison_structure(self):
        bundle = looping_bundle(THRASH, repeats=6)
        comparison = speedup_comparison(
            bundle, {"pif": ProactiveInstructionFetch()}, tiny_system())
        assert comparison["baseline"] == 1.0
        assert "perfect" in comparison
        assert comparison["pif"] > 1.0
        assert comparison["perfect"] >= comparison["pif"] - 0.05

    def test_paper_shape_on_server_trace(self):
        """The Figure 10 ordering on a steady-state server trace:
        baseline < next-line < PIF <= perfect, with PIF close to
        perfect.  Needs a longer trace than the shared fixtures — at
        short lengths cold (first-visit) misses dominate, which no
        history-based prefetcher can cover.
        """
        from dataclasses import replace

        from repro.common.config import PIFConfig
        from repro.pipeline.tracegen import cached_trace

        bundle = cached_trace("web-apache", 400_000, 11).bundle
        system = replace(SystemConfig(),
                         l1i=CacheConfig(capacity_bytes=16 * 1024))
        comparison = speedup_comparison(
            bundle,
            {"next-line": make_prefetcher("next-line"),
             "pif": ProactiveInstructionFetch(
                 PIFConfig(sab_window_regions=3))},
            system, warmup_fraction=0.4)
        assert comparison["perfect"] > 1.0
        assert comparison["pif"] > 1.0
        assert comparison["perfect"] >= comparison["pif"] - 0.02
        assert comparison["pif"] > comparison["next-line"]


class TestKernelEquivalence:
    """The columnar fast fetch loop vs the preserved object-model loop:
    every TimingResult field must be identical (the floats are computed
    by the same arithmetic in the same order, so exact equality holds).
    """

    def mk(self, name):
        if name == "pif":
            from repro.common.config import PIFConfig

            return ProactiveInstructionFetch(PIFConfig(sab_window_regions=3))
        if name == "none":
            return None
        return make_prefetcher(name)

    @pytest.mark.parametrize("engine_name",
                             ["pif", "next-line", "stride", "discontinuity",
                              "tifs", "none"])
    def test_fast_matches_reference(self, web_trace, test_cache_config,
                                    engine_name):
        from dataclasses import replace

        system = replace(SystemConfig(), l1i=test_cache_config)
        reference = run_timing_simulation(
            web_trace.bundle, self.mk(engine_name), system,
            warmup_fraction=0.4, kernel="reference")
        fast = run_timing_simulation(
            web_trace.bundle, self.mk(engine_name), system,
            warmup_fraction=0.4, kernel="fast")
        assert reference == fast

    @pytest.mark.parametrize("kernel", ["fast", "reference"])
    def test_perfect_cache_identical_across_kernels(self, web_trace,
                                                    test_cache_config,
                                                    kernel):
        from dataclasses import replace

        system = replace(SystemConfig(), l1i=test_cache_config)
        results = [run_timing_simulation(web_trace.bundle, None, system,
                                         perfect_cache=True, kernel=k)
                   for k in ("fast", "reference")]
        assert results[0] == results[1]
        assert results[0].stall_cycles == 0.0

    def test_rejects_unknown_kernel(self, web_trace):
        with pytest.raises(ValueError):
            run_timing_simulation(web_trace.bundle, None, kernel="warp")


class TestPerfectCacheInvariants:
    """speedup_comparison's contract under perfect_cache=True."""

    def test_ratio_keys_present_and_ordered(self, web_trace,
                                            test_cache_config):
        from dataclasses import replace

        system = replace(SystemConfig(), l1i=test_cache_config)
        comparison = speedup_comparison(
            web_trace.bundle,
            {"next-line": make_prefetcher("next-line")},
            system, warmup_fraction=0.4)
        assert set(comparison) == {"baseline", "next-line", "perfect"}
        assert comparison["baseline"] == 1.0
        # A perfect L1-I never stalls, so it can never lose to the
        # stall-prone baseline.
        assert comparison["perfect"] >= comparison["baseline"]
        assert all(value > 0.0 for value in comparison.values())
