"""Fetch model: stream alignment and wrong-path injection."""

import pytest

from repro.pipeline.frontend import FetchModel
from repro.pipeline.tracegen import generate_trace
from repro.workloads.executor import ProgramExecutor
from repro.workloads.generator import build_program
from repro.workloads.spec import get_spec


@pytest.fixture(scope="module")
def processed():
    spec = get_spec("oltp-oracle")
    program = build_program(spec, seed=13)
    executor = ProgramExecutor(program, spec, seed=13)
    frontend = FetchModel(program, seed=13)
    accesses, retires, instructions = frontend.process(executor.run(80_000))
    return frontend, accesses, retires, instructions


class TestAlignment:
    def test_correct_path_matches_retires(self, processed):
        _, accesses, retires, _ = processed
        correct = [a for a in accesses if not a.wrong_path]
        assert len(correct) == len(retires)
        for access, retire in zip(correct, retires):
            assert access.pc == retire.pc
            assert access.block == retire.pc >> 6
            assert access.trap_level == retire.trap_level

    def test_retires_are_block_run_collapsed(self, processed):
        _, _, retires, _ = processed
        previous = None
        for retire in retires:
            key = (retire.pc >> 6, retire.trap_level)
            assert key != previous
            previous = key

    def test_instruction_count(self, processed):
        _, _, _, instructions = processed
        assert instructions >= 80_000


class TestWrongPath:
    def test_wrong_path_injected(self, processed):
        frontend, accesses, _, _ = processed
        wrong = [a for a in accesses if a.wrong_path]
        assert wrong, "mispredictions must inject wrong-path accesses"
        assert frontend.stats.wrong_path_accesses == len(wrong)

    def test_wrong_path_fraction_moderate(self, processed):
        _, accesses, _, _ = processed
        fraction = sum(a.wrong_path for a in accesses) / len(accesses)
        assert 0.02 < fraction < 0.5

    def test_mispredictions_counted(self, processed):
        frontend, _, _, _ = processed
        stats = frontend.stats
        assert stats.conditional_branches > 0
        assert 0 < stats.mispredicted_conditionals < stats.conditional_branches
        assert 0.6 < stats.conditional_accuracy() < 1.0

    def test_wrong_path_blocks_are_real_code(self, processed):
        # Wrong-path fetches walk the static CFG, so each block must
        # belong to the program's laid-out text.
        spec = get_spec("oltp-oracle")
        program = build_program(spec, seed=13)
        _, accesses, _, _ = processed
        for access in accesses[:4000]:
            if access.wrong_path:
                assert program.block_at(access.pc) is not None


class TestDeterminism:
    def test_same_seed_same_streams(self):
        first = generate_trace("dss-qry2", instructions=30_000, seed=21)
        second = generate_trace("dss-qry2", instructions=30_000, seed=21)
        assert first.bundle.accesses == second.bundle.accesses
        assert first.bundle.retires == second.bundle.retires

    def test_different_seeds_differ(self):
        first = generate_trace("dss-qry2", instructions=30_000, seed=21)
        second = generate_trace("dss-qry2", instructions=30_000, seed=22)
        assert first.bundle.accesses != second.bundle.accesses
