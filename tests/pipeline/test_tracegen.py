"""High-level trace generation and caching."""

import pytest

from repro.pipeline.tracegen import (
    cached_trace,
    generate_trace,
    multi_core_traces,
    program_for,
)
from repro.workloads.spec import get_spec, scaled_spec


class TestGenerateTrace:
    def test_bundle_metadata(self, oltp_trace):
        bundle = oltp_trace.bundle
        assert bundle.workload == "oltp-db2"
        assert bundle.core == 0
        assert bundle.block_bytes == 64

    def test_accepts_spec_object(self):
        spec = scaled_spec(get_spec("web-zeus"), 0.25)
        trace = generate_trace(spec, instructions=20_000, seed=3)
        assert trace.bundle.workload == "web-zeus"
        trace.bundle.validate()

    def test_frontend_stats_attached(self, oltp_trace):
        assert oltp_trace.frontend_stats.conditional_branches > 0


class TestCaching:
    def test_cached_trace_identity(self):
        first = cached_trace("dss-qry17", 20_000, 5, 0)
        second = cached_trace("dss-qry17", 20_000, 5, 0)
        assert first is second

    def test_program_cached_per_workload(self):
        assert program_for("dss-qry17", 5) is program_for("dss-qry17", 5)

    def test_multi_core(self):
        traces = multi_core_traces("dss-qry17", 20_000, 5, cores=2)
        assert len(traces) == 2
        assert traces[0].bundle.core == 0
        assert traces[1].bundle.core == 1
        assert traces[0].bundle.retires != traces[1].bundle.retires

    def test_multi_core_rejects_zero(self):
        with pytest.raises(ValueError):
            multi_core_traces("dss-qry17", 20_000, 5, cores=0)
