"""Service-layer lifecycle: queueing, backpressure, cancellation,
graceful stop, and crash recovery.

The two service acceptance locks live here:

* a daemon stopped gracefully mid-sweep checkpoints the in-flight
  trace group, persists the job back to ``queued``, and a restart on
  the same data directory finishes it with **zero recomputed points**
  and a results store byte-identical to an uninterrupted run;
* the same holds for a hard kill (``kill -9`` leaves a ``running``
  job file and a partial store — simulated directly on disk).
"""

import time

import pytest

from repro.scenarios import ResultsStore, SpecError, parse_spec, run_sweep
from repro.scenarios import runner as runner_module
from repro.service import (JobConflictError, QueueFullError, ServiceConfig,
                           SweepService, UnknownJobError)
from repro.service.jobs import DONE, QUEUED, RUNNING, JobStore

#: Same scale (and therefore the same cached traces) as the scenario
#: runner tests: two trace groups (cores) x two engine lanes = 4 points.
RAW_SPEC = {
    "name": "svc",
    "sweep": {
        "workloads": ["dss-qry2"], "instructions": 30_000, "seeds": 3,
        "cores": 2, "cache": {"kb": 16},
        "engines": ["next-line",
                    {"name": "pif", "params": {"sab_count": 4,
                                               "sab_window_regions": 3}}],
    },
}

quiet = {"log": lambda event: None}


def wait_for(predicate, timeout=120.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail(f"timed out waiting for {message}")


def make_service(tmp_path, name="data", **config):
    events = []
    service = SweepService(
        ServiceConfig(data_dir=str(tmp_path / name), **config),
        log=events.append)
    return service, events


class TestQueueSemantics:
    def test_submit_validates_at_the_boundary(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(SpecError, match="sweep.workloads"):
            service.submit({"name": "bad",
                            "sweep": {"instructions": 1000,
                                      "engines": ["next-line"]}})
        assert service.jobs() == []  # nothing persisted for a bad spec

    def test_backpressure(self, tmp_path):
        # Worker never started: jobs stay queued and fill the bound.
        service, _ = make_service(tmp_path, queue_depth=1)
        service.submit(RAW_SPEC)
        with pytest.raises(QueueFullError, match="queue is full"):
            service.submit(RAW_SPEC)

    def test_cancel_queued_only(self, tmp_path):
        service, _ = make_service(tmp_path)
        job = service.submit(RAW_SPEC)
        cancelled = service.cancel(job.id)
        assert cancelled.state == "cancelled"
        assert JobStore(service.config.data_dir).load(job.id).state \
            == "cancelled"
        with pytest.raises(JobConflictError, match="only queued"):
            service.cancel(job.id)
        with pytest.raises(UnknownJobError):
            service.cancel("job-999999-00000000")
        # The cancelled job released its queue slot.
        assert service.queue_available() == service.config.queue_depth

    def test_counts_and_listing(self, tmp_path):
        service, _ = make_service(tmp_path)
        first = service.submit(RAW_SPEC)
        second = service.submit(RAW_SPEC)
        service.cancel(second.id)
        assert service.counts() == {"queued": 1, "cancelled": 1}
        assert [job.id for job in service.jobs()] == [first.id, second.id]


class TestLifecycle:
    def test_job_runs_to_done_and_matches_cli(self, tmp_path):
        service, _ = make_service(tmp_path)
        service.start()
        try:
            job = service.submit(RAW_SPEC)
            wait_for(lambda: service.get(job.id).state == DONE,
                     message="job completion")
        finally:
            service.stop()
        summary = service.sweep_summary(service.get(job.id))
        assert summary["complete"] and summary["computed"] == 4

        # The service's store is byte-identical to the CLI's.
        ref = tmp_path / "ref"
        run_sweep(parse_spec(RAW_SPEC), ref, **quiet)
        served = ResultsStore(service.store.sweep_dir(job.id))
        assert served.records_path.read_bytes() \
            == ResultsStore(ref).records_path.read_bytes()
        assert served.scenario_path.read_bytes() \
            == ResultsStore(ref).scenario_path.read_bytes()

    def test_failed_job_keeps_worker_alive(self, tmp_path, monkeypatch):
        """A sweep whose every task raises completes *degraded* (the
        failure model quarantines the tasks after retries instead of
        killing the job) and the worker thread survives it."""
        def boom(*args, **kwargs):
            raise RuntimeError("engine room on fire")

        service, _ = make_service(tmp_path)
        monkeypatch.setattr(runner_module, "run_multi_prefetch_simulation",
                            boom)
        service.start()
        try:
            job = service.submit(RAW_SPEC)
            wait_for(lambda: service.get(job.id).state == "degraded",
                     message="degraded completion")
            finished = service.get(job.id)
            assert finished.failed_points == 4
            assert "quarantined" in finished.error
            # Worker survived; a healthy job still completes.
            monkeypatch.undo()
            second = service.submit(RAW_SPEC)
            wait_for(lambda: service.get(second.id).state == DONE,
                     message="recovery after failure")
            assert service.get(second.id).failed_points == 0
        finally:
            service.stop()


class TestGracefulStop:
    def test_stop_mid_sweep_checkpoints_and_requeues(self, tmp_path):
        """Stop after the first trace group: the group's records are in
        the store, the job is back to queued, and a fresh service on
        the same data dir finishes with zero recomputation, ending
        byte-identical to an uninterrupted run."""
        holder = {}

        def stop_after_first_group(event):
            if event["event"] == "sweep-progress" \
                    and "[1/" in event.get("line", ""):
                holder["service"].request_stop()

        service = SweepService(
            ServiceConfig(data_dir=str(tmp_path / "data")),
            log=stop_after_first_group)
        holder["service"] = service
        service.start()
        job = service.submit(RAW_SPEC)
        wait_for(lambda: service.get(job.id).state in (QUEUED, DONE)
                 and service.get(job.id).computed > 0,
                 message="graceful checkpoint")
        service.stop(wait=True)

        persisted = JobStore(service.config.data_dir).load(job.id)
        assert persisted.state == QUEUED  # re-queued, not failed
        store = ResultsStore(service.store.sweep_dir(job.id))
        partial = store.records_path.read_bytes()
        assert persisted.computed == 2  # exactly the first group's lanes
        assert len(partial.splitlines()) == 2

        # Restart on the same data dir: recovery must resume, not redo.
        lanes_walked = []
        real = runner_module.run_multi_prefetch_simulation

        def counting(bundle, prefetchers, *args, **kwargs):
            lanes_walked.append(len(prefetchers))
            return real(bundle, prefetchers, *args, **kwargs)

        resumed, _ = make_service(tmp_path, name="data")
        try:
            runner_module.run_multi_prefetch_simulation = counting
            resumed.start()
            wait_for(lambda: resumed.get(job.id).state == DONE,
                     message="resumed completion")
        finally:
            runner_module.run_multi_prefetch_simulation = real
            resumed.stop()
        assert sum(lanes_walked) == 2  # only the missing group's lanes

        final = store.records_path.read_bytes()
        assert final.startswith(partial)
        ref = tmp_path / "ref"
        run_sweep(parse_spec(RAW_SPEC), ref, **quiet)
        assert final == ResultsStore(ref).records_path.read_bytes()


class TestCrashRecovery:
    def test_kill_dash_nine_resumes_with_zero_recompute(self, tmp_path):
        """Simulate the on-disk state a `kill -9`'d daemon leaves — a
        `running` job file plus a partially filled store — and assert a
        restarted service finishes the sweep without recomputing any
        stored point."""
        data_dir = tmp_path / "data"
        store = JobStore(data_dir)
        job = store.create(RAW_SPEC, "svc", jobs=1)
        job.state = RUNNING  # what the dead process left behind
        store.save(job)
        partial = run_sweep(parse_spec(RAW_SPEC), store.sweep_dir(job.id),
                            limit=2, **quiet)
        assert (partial.computed, partial.remaining) == (2, 2)
        before = ResultsStore(store.sweep_dir(job.id)
                              ).records_path.read_bytes()

        lanes_walked = []
        real = runner_module.run_multi_prefetch_simulation

        def counting(bundle, prefetchers, *args, **kwargs):
            lanes_walked.append(len(prefetchers))
            return real(bundle, prefetchers, *args, **kwargs)

        events = []
        service = SweepService(ServiceConfig(data_dir=str(data_dir)),
                               log=events.append)
        try:
            runner_module.run_multi_prefetch_simulation = counting
            service.start()
            wait_for(lambda: service.get(job.id).state == DONE,
                     message="crash recovery")
        finally:
            runner_module.run_multi_prefetch_simulation = real
            service.stop()

        assert {"event": "job-recovered", "job": job.id} in events
        assert sum(lanes_walked) == 2  # zero stored points recomputed
        after = ResultsStore(store.sweep_dir(job.id)
                             ).records_path.read_bytes()
        assert after.startswith(before)
        ref = tmp_path / "ref"
        run_sweep(parse_spec(RAW_SPEC), ref, **quiet)
        assert after == ResultsStore(ref).records_path.read_bytes()
