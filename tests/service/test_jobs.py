"""Job model + persistence: ids, atomic writes, recovery ordering."""

import json

import pytest

from repro.service.jobs import (CANCELLED, DONE, QUEUED, RUNNING, Job,
                                JobStore, JobStoreError, spec_digest)

SPEC = {"name": "unit", "sweep": {"workloads": ["dss-qry2"],
                                  "instructions": 1000,
                                  "engines": ["next-line"]}}


class TestIdentity:
    def test_ids_are_deterministic_and_sequential(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.create(SPEC, "unit", jobs=1)
        second = store.create(SPEC, "unit", jobs=1)
        digest = spec_digest(SPEC)
        assert first.id == f"job-000001-{digest}"
        assert second.id == f"job-000002-{digest}"
        assert (first.seq, second.seq) == (1, 2)

    def test_seq_survives_restart(self, tmp_path):
        JobStore(tmp_path).create(SPEC, "unit", jobs=1)
        reopened = JobStore(tmp_path)
        assert reopened.next_seq() == 2
        assert reopened.create(SPEC, "unit", jobs=1).seq == 2

    def test_digest_is_content_addressed(self):
        assert spec_digest(SPEC) == spec_digest(json.loads(json.dumps(SPEC)))
        assert spec_digest(SPEC) != spec_digest({**SPEC, "name": "other"})


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(SPEC, "unit", jobs=3)
        job.state = DONE
        job.error = None
        job.computed = 7
        store.save(job)
        loaded = store.load(job.id)
        assert loaded == job

    def test_load_missing_returns_none(self, tmp_path):
        assert JobStore(tmp_path).load("job-000001-00000000") is None

    def test_atomic_write_leaves_no_scratch(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(SPEC, "unit", jobs=1)
        assert not list(store.jobs_dir.glob("*.tmp"))

    def test_corrupt_job_file_is_loud(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(SPEC, "unit", jobs=1)
        store.job_path(job.id).write_text("{not json")
        with pytest.raises(JobStoreError, match="unreadable job file"):
            store.load(job.id)

    def test_unknown_state_is_loud(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(SPEC, "unit", jobs=1)
        raw = json.loads(store.job_path(job.id).read_text())
        raw["state"] = "levitating"
        store.job_path(job.id).write_text(json.dumps(raw))
        with pytest.raises(JobStoreError, match="unknown state"):
            store.load(job.id)

    def test_sweep_dir_is_per_job(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.create(SPEC, "unit", jobs=1)
        second = store.create(SPEC, "unit", jobs=1)
        assert store.sweep_dir(first.id) != store.sweep_dir(second.id)
        assert store.sweep_dir(first.id).parent == store.sweeps_dir


class TestRecovery:
    def test_interrupted_running_jobs_first(self, tmp_path):
        """A killed daemon's `running` job outranks older queued ones."""
        store = JobStore(tmp_path)
        queued_early = store.create(SPEC, "unit", jobs=1)
        running = store.create(SPEC, "unit", jobs=1)
        done = store.create(SPEC, "unit", jobs=1)
        cancelled = store.create(SPEC, "unit", jobs=1)
        running.state = RUNNING
        store.save(running)
        done.state = DONE
        store.save(done)
        cancelled.state = CANCELLED
        store.save(cancelled)

        recovered = store.recoverable()
        assert [job.id for job in recovered] == [running.id, queued_early.id]
        assert [job.state for job in recovered] == [RUNNING, QUEUED]

    def test_load_all_ordered_by_seq(self, tmp_path):
        store = JobStore(tmp_path)
        ids = [store.create(SPEC, "unit", jobs=1).id for _ in range(3)]
        assert [job.id for job in store.load_all()] == ids
