"""HTTP layer: routing, limits, live schema conformance, concurrency.

Every JSON response the daemon emits is validated here with
:func:`repro.service.schemas.validate_payload` — the same checker
``tests/test_docs.py`` runs over the examples in ``docs/api.md`` — so
the documented contract and the live wire format cannot diverge.

The concurrent-client test is the ISSUE's acceptance lock: N threads
submit distinct sweeps against one daemon and every resulting store
*and* report is byte-identical to a plain CLI run of the same spec.
"""

import http.client
import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.scenarios import (ResultsStore, format_csv, format_markdown,
                             parse_spec, run_sweep, summarize)
from repro.service import ServiceConfig, SweepService, build_server
from repro.service.schemas import validate_payload

quiet = {"log": lambda event: None}


def make_spec(seed, cores=1):
    return {
        "name": f"http-{seed}",
        "sweep": {"workloads": ["dss-qry2"], "instructions": 20_000,
                  "seeds": seed, "cores": cores, "cache": {"kb": 16},
                  "engines": ["next-line"]},
    }


@contextmanager
def serve(tmp_path, start=True, **config):
    """A live daemon on a free port; ``start=False`` leaves the worker
    thread off so submitted jobs stay queued (backpressure/cancel
    tests)."""
    service = SweepService(
        ServiceConfig(data_dir=str(tmp_path / "data"), **config), **quiet)
    server = build_server("127.0.0.1", 0, service)
    if start:
        service.start()
    listener = threading.Thread(target=server.serve_forever, daemon=True)
    listener.start()
    try:
        yield server.server_address[1], service
    finally:
        server.shutdown()
        listener.join(timeout=10)
        service.stop()
        server.server_close()


def request(port, method, path, body=None, headers=None):
    """One request on a fresh connection → (status, headers, body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def request_json(port, method, path, body=None, headers=None):
    status, _, data = request(port, method, path, body=body, headers=headers)
    return status, json.loads(data)


def submit(port, raw_spec):
    return request_json(port, "POST", "/v1/sweeps", body=json.dumps(raw_spec))


def raw_request(port, text):
    """Hand-rolled request bytes (for frames http.client refuses to
    send, like a POST with no Content-Length) → the status code."""
    with socket.create_connection(("127.0.0.1", port), timeout=60) as sock:
        sock.sendall(text.encode())
        reply = sock.makefile("rb").readline().decode()
    return int(reply.split()[1])


def poll_done(port, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = request_json(port, "GET", f"/v1/sweeps/{job_id}")
        assert status == 200
        if payload["state"] in ("done", "failed"):
            return payload
        time.sleep(0.05)
    pytest.fail(f"job {job_id} did not finish within {timeout}s")


class TestRoutingAndSchemas:
    def test_healthz_conforms(self, tmp_path):
        with serve(tmp_path, queue_depth=7) as (port, _):
            status, payload = request_json(port, "GET", "/v1/healthz")
        assert status == 200
        validate_payload("health", payload)
        assert payload["status"] == "ok"
        assert payload["queue"] == {"capacity": 7, "available": 7}

    def test_submit_detail_and_listing_conform(self, tmp_path):
        with serve(tmp_path, start=False) as (port, _):
            status, payload = submit(port, make_spec(3))
            assert status == 202
            validate_payload("job", payload)
            assert payload["state"] == "queued"
            assert payload["sweep"]["points"] == 1
            job_id = payload["id"]

            status, detail = request_json(port, "GET",
                                          f"/v1/sweeps/{job_id}")
            assert status == 200
            validate_payload("job", detail)

            status, listing = request_json(port, "GET", "/v1/jobs")
            assert status == 200
            validate_payload("jobs", listing)
            assert listing["count"] == 1
            assert listing["jobs"][0]["id"] == job_id

    def test_error_status_matrix(self, tmp_path):
        with serve(tmp_path, start=False, max_body_bytes=512) as (port, _):
            cases = [
                request_json(port, "GET", "/v1/nope"),            # 404
                request_json(port, "GET",
                             "/v1/sweeps/job-000009-deadbeef"),   # 404
                request_json(port, "POST", "/v1/healthz",
                             body="{}"),                          # 405
                request_json(port, "POST", "/v1/sweeps",
                             body="{not json"),                   # 400
                request_json(port, "POST", "/v1/sweeps",
                             body='["not", "an", "object"]'),     # 400
                request_json(port, "POST", "/v1/sweeps",
                             body=json.dumps({"name": "x"})),     # 400
                request_json(port, "POST", "/v1/sweeps",
                             body="x" * 600),                     # 413
            ]
            for status, payload in cases:
                validate_payload("error", payload)
            assert [status for status, _ in cases] \
                == [404, 404, 405, 400, 400, 400, 413]

            status, headers, _ = request(port, "DELETE", "/v1/jobs",
                                         headers={"Content-Length": "0"})
            assert status == 405 and headers["Allow"] == "GET"

            assert raw_request(
                port, "POST /v1/sweeps HTTP/1.1\r\nHost: t\r\n"
                      "Connection: close\r\n\r\n") == 411
            assert raw_request(
                port, "POST /v1/sweeps HTTP/1.1\r\nHost: t\r\n"
                      "Content-Length: ten\r\n"
                      "Connection: close\r\n\r\n") == 400

    def test_dist_routes_answer_409_pointing_at_the_coordinator(
            self, tmp_path):
        """The daemon knows the ``/v1/dist/*`` routes (they share the
        documented route table) but refuses them with a structured 409
        pointing at the sweep coordinator — they are served only by
        ``repro sweep run --transport local|http``."""
        with serve(tmp_path, start=False) as (port, _):
            for path in ("/v1/dist/lease", "/v1/dist/records",
                         "/v1/dist/heartbeat"):
                status, payload = request_json(
                    port, "POST", path, body=json.dumps({"worker": "w0"}))
                assert status == 409
                validate_payload("error", payload)
                assert "sweep coordinator" in payload["error"]

    def test_unexpected_handler_error_is_a_structured_500(
            self, tmp_path, monkeypatch):
        """A handler bug must answer with the documented
        ``internal_error`` document and a ``request-error`` log event —
        never a raw traceback on the socket or a dead daemon."""
        from repro.service.http import SweepRequestHandler

        def broken(self, params):
            raise KeyError("metrics")

        monkeypatch.setattr(SweepRequestHandler, "handle_healthz", broken)
        with serve(tmp_path, start=False) as (port, service):
            events = []
            service._log = events.append
            status, payload = request_json(port, "GET", "/v1/healthz")
            # The daemon survives: the next request is served normally.
            listed, _ = request_json(port, "GET", "/v1/jobs")
        assert status == 500
        validate_payload("internal_error", payload)
        assert payload["detail"] == "KeyError: 'metrics'"
        assert listed == 200
        errors = [event for event in events
                  if event["event"] == "request-error"]
        assert len(errors) == 1
        assert errors[0]["path"] == "/v1/healthz"
        assert errors[0]["error"] == "KeyError: 'metrics'"

    def test_bad_report_format_is_400(self, tmp_path):
        with serve(tmp_path, start=False) as (port, _):
            _, payload = submit(port, make_spec(3))
            status, error = request_json(
                port, "GET", f"/v1/sweeps/{payload['id']}/report?format=pdf")
        assert status == 400
        validate_payload("error", error)
        assert "unknown report format" in error["error"]

    def test_backpressure_is_429(self, tmp_path):
        with serve(tmp_path, start=False, queue_depth=1) as (port, _):
            first, _ = submit(port, make_spec(3))
            second, payload = submit(port, make_spec(4))
        assert (first, second) == (202, 429)
        validate_payload("error", payload)
        assert "queue is full" in payload["error"]

    def test_yaml_body(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        with serve(tmp_path, start=False) as (port, _):
            status, payload = request_json(
                port, "POST", "/v1/sweeps",
                body=yaml.safe_dump(make_spec(3)),
                headers={"Content-Type": "application/yaml"})
        assert status == 202
        validate_payload("job", payload)


class TestCancel:
    def test_cancel_flow(self, tmp_path):
        with serve(tmp_path, start=False) as (port, _):
            _, payload = submit(port, make_spec(3))
            job_id = payload["id"]

            status, cancelled = request_json(port, "DELETE",
                                             f"/v1/sweeps/{job_id}")
            assert status == 200
            validate_payload("job", cancelled)
            assert cancelled["state"] == "cancelled"

            status, conflict = request_json(port, "DELETE",
                                            f"/v1/sweeps/{job_id}")
            assert status == 409
            validate_payload("error", conflict)

            status, missing = request_json(port, "DELETE",
                                           "/v1/sweeps/job-000042-0badc0de")
            assert status == 404
            validate_payload("error", missing)


class TestConcurrentClients:
    def test_stores_and_reports_match_cli(self, tmp_path):
        """Three clients, three distinct sweeps, one daemon: every store
        and report must be byte-identical to a plain CLI run."""
        seeds = [3, 4, 5]
        outcomes = {}

        def client(port, seed):
            status, payload = submit(port, make_spec(seed))
            assert status == 202
            done = poll_done(port, payload["id"])
            assert done["state"] == "done", done["error"]
            assert done["sweep"]["complete"]
            _, _, markdown = request(
                port, "GET", f"/v1/sweeps/{payload['id']}/report")
            _, _, csv = request(
                port, "GET",
                f"/v1/sweeps/{payload['id']}/report?format=csv")
            outcomes[seed] = (payload["id"], markdown, csv)

        with serve(tmp_path) as (port, service):
            threads = [threading.Thread(target=client, args=(port, seed))
                       for seed in seeds]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            assert not any(thread.is_alive() for thread in threads)

            assert sorted(outcomes) == seeds
            for seed in seeds:
                job_id, markdown, csv = outcomes[seed]
                spec = parse_spec(make_spec(seed))
                ref = tmp_path / f"ref-{seed}"
                run_sweep(spec, ref, **quiet)
                served = ResultsStore(service.store.sweep_dir(job_id))
                assert served.records_path.read_bytes() \
                    == ResultsStore(ref).records_path.read_bytes()
                summary = summarize(spec, ResultsStore(ref))
                assert markdown == format_markdown(summary).encode()
                assert csv == format_csv(summary).encode()
