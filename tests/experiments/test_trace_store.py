"""Store-backed experiments: bit-identical tables, generation skipped.

The acceptance contract of the trace store: replaying archives off disk
must change *nothing* about experiment output, and a warm store must
actually short-circuit the generator.
"""

import pytest

import repro.pipeline.tracegen as tracegen
from repro.common.config import CacheConfig, PIFConfig
from repro.core.pif import ProactiveInstructionFetch
from repro.experiments.common import ExperimentConfig
from repro.experiments.fig3 import run_fig3
from repro.sim.engine import run_multi_prefetch_simulation
from repro.trace.store import STORE_ENV, TraceStore

#: Deliberately small: two workloads, two cores, short traces.
SMALL = ExperimentConfig(instructions=60_000, seed=9, cores=2,
                         workloads=("oltp-db2", "dss-qry2"))


@pytest.fixture()
def clean_trace_cache():
    """Isolate the in-process trace cache around each test."""
    tracegen.cached_trace.cache_clear()
    yield
    tracegen.cached_trace.cache_clear()


def _forbid_generation(monkeypatch):
    def explode(*args, **kwargs):
        raise AssertionError("trace generation ran despite a warm store")

    monkeypatch.setattr(tracegen, "generate_trace", explode)


class TestStoreEquivalence:
    def test_store_loaded_tables_bit_identical_and_warm_run_skips_generation(
            self, tmp_path, monkeypatch, clean_trace_cache):
        # Reference: persistence disabled, everything freshly generated.
        monkeypatch.setenv(STORE_ENV, "off")
        reference = run_fig3(SMALL).to_table()

        # Cold store run: generates once, persists archives.
        store_dir = tmp_path / "traces"
        monkeypatch.setenv(STORE_ENV, str(store_dir))
        tracegen.cached_trace.cache_clear()
        cold = run_fig3(SMALL).to_table()
        assert cold == reference
        archives = TraceStore(store_dir).entries()
        assert len(archives) == len(SMALL.workloads) * SMALL.cores
        assert all(entry.current for entry in archives)

        # Warm store run: the generator must never execute.
        tracegen.cached_trace.cache_clear()
        _forbid_generation(monkeypatch)
        warm = run_fig3(SMALL).to_table()
        assert warm == reference

    def test_store_loaded_simulation_bit_identical(
            self, tmp_path, monkeypatch, clean_trace_cache):
        """A full prefetch simulation over a store-loaded bundle equals
        one over the freshly generated bundle, counter for counter."""
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "t"))
        cache = CacheConfig(capacity_bytes=16 * 1024, associativity=2)

        def run(bundle):
            engine = ProactiveInstructionFetch(
                PIFConfig(sab_window_regions=3))
            return run_multi_prefetch_simulation(
                bundle, [engine], cache_config=cache,
                warmup_fraction=0.4)[0]

        fresh = tracegen.cached_trace("web-apache", 60_000, 9)
        baseline = run(fresh.bundle)

        tracegen.cached_trace.cache_clear()
        _forbid_generation(monkeypatch)
        loaded = tracegen.cached_trace("web-apache", 60_000, 9)
        assert loaded.frontend_stats == fresh.frontend_stats
        replayed = run(loaded.bundle)

        assert replayed.baseline_misses == baseline.baseline_misses
        assert replayed.remaining_misses == baseline.remaining_misses
        assert replayed.per_level_baseline == baseline.per_level_baseline
        assert replayed.per_level_remaining == baseline.per_level_remaining
        assert replayed.prefetches_issued == baseline.prefetches_issued
        assert replayed.cache_stats == baseline.cache_stats
        assert replayed.baseline_stats == baseline.baseline_stats
