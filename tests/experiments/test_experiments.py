"""Experiment harness: structure and shape checks at smoke scale.

These tests run every figure experiment on a tiny configuration — the
assertions check structure and lenient shape properties; the strict
paper-shape assertions live in ``benchmarks/`` where traces are long
enough for the statistics to settle.
"""

from dataclasses import replace

import pytest

from repro.experiments.ablations import run_source_ablation, run_temporal_ablation
from repro.experiments.common import (
    ExperimentConfig,
    QUICK_CONFIG,
    cumulative,
    format_table,
    normalize_histogram,
    traces_for,
)
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import geometry_for_size, run_fig8
from repro.experiments.fig9 import HISTORY_SIZES, run_fig9
from repro.experiments.fig10 import run_fig10

#: Tiny two-workload configuration shared by these tests.
SMOKE = replace(QUICK_CONFIG, instructions=150_000,
                workloads=("oltp-db2", "dss-qry2"))


class TestCommon:
    def test_traces_cached_and_sized(self):
        traces = traces_for(SMOKE, "oltp-db2")
        assert len(traces) == SMOKE.cores
        assert traces[0].bundle.instructions >= SMOKE.instructions

    def test_scaled(self):
        scaled = SMOKE.scaled(0.5)
        assert scaled.instructions == 75_000
        assert scaled.workloads == SMOKE.workloads

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["x", "y"], ["long", "z"]],
                             title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_histogram_helpers(self):
        normalized = normalize_histogram({1: 3, 2: 1})
        assert normalized[1] == pytest.approx(0.75)
        cdf = cumulative(normalized)
        assert cdf[2] == pytest.approx(1.0)

    def test_experiment_config_validation(self):
        config = ExperimentConfig()
        assert config.cache.capacity_bytes == 32 * 1024
        assert config.pif.sab_window_regions == 3


class TestFig2:
    def test_structure_and_bounds(self):
        result = run_fig2(SMOKE)
        assert set(result.coverage) == set(SMOKE.workloads)
        for row in result.coverage.values():
            assert set(row) == {"miss", "access", "retire", "retire_sep"}
            for value in row.values():
                assert 0.0 <= value <= 1.0
        assert "Figure 2" in result.to_table()

    def test_retire_sep_at_least_miss(self):
        result = run_fig2(SMOKE)
        for workload in SMOKE.workloads:
            row = result.coverage[workload]
            assert row["retire_sep"] >= row["miss"] - 0.05


class TestFig3:
    def test_distributions_sum_to_one(self):
        result = run_fig3(SMOKE)
        for workload in SMOKE.workloads:
            assert sum(result.density[workload].values()) == pytest.approx(1.0)
            assert sum(result.discontinuity[workload].values()) == \
                pytest.approx(1.0)
            assert result.multi_block_fraction(workload) > 0.2


class TestFig7:
    def test_cdf_monotone_ending_at_one(self):
        result = run_fig7(SMOKE)
        for workload in SMOKE.workloads:
            values = [v for _, v in sorted(result.cdf[workload].items())]
            assert values == sorted(values)
            assert values[-1] == pytest.approx(1.0)


class TestFig8:
    def test_geometry_for_size(self):
        assert geometry_for_size(1).total_blocks == 1
        assert geometry_for_size(8).preceding == 2
        assert geometry_for_size(8).succeeding == 5
        assert geometry_for_size(4).total_blocks == 4
        with pytest.raises(ValueError):
            geometry_for_size(0)

    def test_structure(self):
        result = run_fig8(SMOKE)
        for workload in SMOKE.workloads:
            profile = result.offset_profile[workload]
            assert sum(profile.values()) == pytest.approx(1.0)
            assert set(result.size_coverage[workload]) == {1, 2, 4, 6, 8}


class TestFig9:
    def test_history_sweep_series(self):
        result = run_fig9(SMOKE)
        for workload in SMOKE.workloads:
            series = result.history_coverage[workload]
            assert set(series) == set(HISTORY_SIZES)
            assert series[HISTORY_SIZES[-1]] >= series[HISTORY_SIZES[0]] - 0.02


class TestFig10:
    def test_engines_and_speedups(self):
        result = run_fig10(SMOKE)
        for workload in SMOKE.workloads:
            assert set(result.coverage[workload]) == {
                "next-line", "tifs", "pif"}
            speedup = result.speedup[workload]
            assert speedup["baseline"] == 1.0
            assert speedup["perfect"] >= 1.0
        assert result.mean_speedup("perfect") >= result.mean_speedup("pif") - 0.03


class TestAblations:
    def test_temporal_ablation_settings(self):
        result = run_temporal_ablation(
            replace(SMOKE, workloads=("dss-qry2",)))
        assert set(result.coverage["dss-qry2"]) == {"0", "1", "2", "4", "8"}

    def test_source_ablation_shape(self):
        result = run_source_ablation(replace(SMOKE, workloads=("oltp-db2",)))
        row = result.coverage["oltp-db2"]
        assert set(row) == {"retire", "fetch"}
