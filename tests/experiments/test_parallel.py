"""Parallel experiment fan-out: ordering, determinism, equivalence."""

from dataclasses import replace

import pytest

from repro.experiments.ablations import run_source_ablation
from repro.experiments.common import QUICK_CONFIG
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig10 import run_fig10
from repro.experiments.parallel import (
    ExperimentPool,
    parallel_map,
    run_workload_grid,
)

#: Tiny configuration so the process-pool tests stay fast.
TINY = replace(QUICK_CONFIG, instructions=60_000,
               workloads=("oltp-db2", "dss-qry2"))


def _workload_tag(config, workload):
    """Module-level slice function (must be picklable for the pool)."""
    return f"{workload}@{config.instructions}"


def _double(value):
    return 2 * value


class TestPlumbing:
    def test_serial_grid_preserves_workload_order(self):
        pairs = run_workload_grid(_workload_tag, TINY, pool=None)
        assert [w for w, _ in pairs] == list(TINY.workloads)
        assert pairs[0][1] == "oltp-db2@60000"

    def test_pool_grid_matches_serial(self):
        serial = run_workload_grid(_workload_tag, TINY, pool=None)
        with ExperimentPool(jobs=2) as pool:
            fanned = pool.map_workloads(_workload_tag, TINY)
        assert fanned == serial

    def test_parallel_map_is_ordered(self):
        items = list(range(7))
        assert parallel_map(_double, items, jobs=2) == \
            [2 * item for item in items]
        assert parallel_map(_double, items, jobs=1) == \
            [2 * item for item in items]

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ExperimentPool(jobs=0)
        with pytest.raises(ValueError):
            parallel_map(_double, [1], jobs=0)

    def test_pool_close_is_idempotent(self):
        pool = ExperimentPool(jobs=2)
        pool.close()
        pool.close()


class TestBitIdenticalResults:
    """The acceptance bar: fanned-out tables == sequential tables."""

    def test_fig3_tables_identical(self):
        sequential = run_fig3(TINY)
        with ExperimentPool(jobs=2) as pool:
            fanned = run_fig3(TINY, pool=pool)
        assert fanned.to_table() == sequential.to_table()
        assert fanned.density == sequential.density
        assert fanned.discontinuity == sequential.discontinuity

    def test_fig10_tables_identical(self):
        config = replace(TINY, workloads=("oltp-db2",))
        sequential = run_fig10(config)
        with ExperimentPool(jobs=2) as pool:
            fanned = run_fig10(config, pool=pool)
        assert fanned.to_table() == sequential.to_table()
        assert fanned.coverage == sequential.coverage
        assert fanned.speedup == sequential.speedup

    def test_ablation_tables_identical(self):
        config = replace(TINY, workloads=("dss-qry2",))
        sequential = run_source_ablation(config)
        with ExperimentPool(jobs=2) as pool:
            fanned = run_source_ablation(config, pool=pool)
        assert fanned.to_table() == sequential.to_table()
        assert fanned.coverage == sequential.coverage
