"""Parallel experiment fan-out: ordering, determinism, equivalence."""

from dataclasses import replace

import pytest

from repro.experiments.ablations import run_source_ablation
from repro.experiments.common import QUICK_CONFIG
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig10 import run_fig10
from repro.experiments.parallel import (
    WORKER_DIED,
    ExperimentPool,
    TaskFailure,
    WorkerCrashError,
    parallel_imap,
    parallel_map,
    resolve_jobs,
    run_workload_grid,
    shared_pool,
    shutdown_shared_pool,
)

#: Tiny configuration so the process-pool tests stay fast.
TINY = replace(QUICK_CONFIG, instructions=60_000,
               workloads=("oltp-db2", "dss-qry2"))


def _workload_tag(config, workload):
    """Module-level slice function (must be picklable for the pool)."""
    return f"{workload}@{config.instructions}"


def _double(value):
    return 2 * value


class TestJobsResolution:
    def test_integers_pass_through(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("2") == 2

    def test_auto_derives_from_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_jobs("auto") == 7
        assert resolve_jobs(None) == 7
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_jobs("auto") == 1
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_jobs("AUTO") == 1

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(-2)
        with pytest.raises(ValueError):
            resolve_jobs("many")


class TestSharedPool:
    def test_pool_persists_across_calls(self):
        try:
            first = shared_pool(2)
            again = shared_pool(2)
            assert first is again
            # Both generic maps draw from the same persistent pool.
            assert parallel_map(_double, [1, 2, 3], jobs=2) == [2, 4, 6]
            assert sorted(parallel_imap(_double, [1, 2, 3], jobs=2)) == [
                (0, 2), (1, 4), (2, 6)]
            assert shared_pool(2) is first
        finally:
            shutdown_shared_pool()

    def test_resize_recreates(self):
        try:
            first = shared_pool(2)
            resized = shared_pool(3)
            assert resized is not first
        finally:
            shutdown_shared_pool()

    def test_rejects_serial(self):
        with pytest.raises(ValueError):
            shared_pool(1)

    def test_workers_attach_to_the_trace_store(self, monkeypatch,
                                               tmp_path):
        from repro.trace.store import STORE_ENV

        monkeypatch.setenv(STORE_ENV, str(tmp_path / "attached"))
        try:
            shutdown_shared_pool()
            results = parallel_map(_read_store_env, [0, 1], jobs=2)
            assert set(results) == {str(tmp_path / "attached")}
        finally:
            shutdown_shared_pool()

    def test_repointed_store_recreates_the_pool(self, monkeypatch,
                                                tmp_path):
        """Re-pointing REPRO_TRACE_STORE mid-process must never leave
        workers attached to the old store."""
        from repro.trace.store import STORE_ENV

        try:
            monkeypatch.setenv(STORE_ENV, str(tmp_path / "first"))
            first_pool = shared_pool(2)
            assert set(parallel_map(_read_store_env, [0, 1], jobs=2)) == \
                {str(tmp_path / "first")}
            monkeypatch.setenv(STORE_ENV, str(tmp_path / "second"))
            assert shared_pool(2) is not first_pool
            assert set(parallel_map(_read_store_env, [0, 1], jobs=2)) == \
                {str(tmp_path / "second")}
        finally:
            shutdown_shared_pool()


def _read_store_env(_):
    import os

    from repro.trace.store import STORE_ENV

    return os.environ.get(STORE_ENV)


class TestPlumbing:
    def test_serial_grid_preserves_workload_order(self):
        pairs = run_workload_grid(_workload_tag, TINY, pool=None)
        assert [w for w, _ in pairs] == list(TINY.workloads)
        assert pairs[0][1] == "oltp-db2@60000"

    def test_pool_grid_matches_serial(self):
        serial = run_workload_grid(_workload_tag, TINY, pool=None)
        with ExperimentPool(jobs=2) as pool:
            fanned = pool.map_workloads(_workload_tag, TINY)
        assert fanned == serial

    def test_parallel_map_is_ordered(self):
        items = list(range(7))
        assert parallel_map(_double, items, jobs=2) == \
            [2 * item for item in items]
        assert parallel_map(_double, items, jobs=1) == \
            [2 * item for item in items]

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ExperimentPool(jobs=0)
        with pytest.raises(ValueError):
            parallel_map(_double, [1], jobs=0)

    def test_pool_close_is_idempotent(self):
        pool = ExperimentPool(jobs=2)
        pool.close()
        pool.close()


def _die_on_three(value):
    """Module-level poison task: value 3 exits the worker like a
    segfault (no exception, no cleanup); everything else doubles."""
    if value == 3:
        import os

        os._exit(99)
    return 2 * value


def _raise_on_three(value):
    if value == 3:
        raise RuntimeError("task three is broken")
    return 2 * value


class TestWorkerDeath:
    """The pool-survival contract: a dead worker costs one task slot,
    never the batch (and never a hang, which is what
    multiprocessing.Pool would do)."""

    def teardown_method(self):
        shutdown_shared_pool()

    def test_yield_mode_converts_death_to_task_failure(self):
        results = dict(parallel_imap(_die_on_three, [1, 2, 3, 4, 5],
                                     jobs=2, task_errors="yield"))
        assert results[2] == TaskFailure("worker-died", WORKER_DIED)
        for index, value in enumerate([1, 2, 3, 4, 5]):
            if index != 2:
                assert results[index] == 2 * value

    def test_raise_mode_raises_worker_crash_error(self):
        with pytest.raises(WorkerCrashError, match="isolation"):
            list(parallel_imap(_die_on_three, [1, 2, 3, 4, 5], jobs=2))

    def test_yield_mode_converts_exceptions_deterministically(self):
        for jobs in (1, 2):
            results = dict(parallel_imap(_raise_on_three, [1, 2, 3, 4],
                                         jobs=jobs, task_errors="yield"))
            assert results[2] == TaskFailure(
                "error", "RuntimeError: task three is broken")
            assert results[0] == 2 and results[3] == 8

    def test_raise_mode_propagates_exceptions(self):
        with pytest.raises(RuntimeError, match="task three is broken"):
            list(parallel_imap(_raise_on_three, [1, 2, 3, 4], jobs=2))

    def test_bad_task_errors_value_rejected(self):
        with pytest.raises(ValueError, match="task_errors"):
            list(parallel_imap(_double, [1], task_errors="ignore"))


class TestBitIdenticalResults:
    """The acceptance bar: fanned-out tables == sequential tables."""

    def test_fig3_tables_identical(self):
        sequential = run_fig3(TINY)
        with ExperimentPool(jobs=2) as pool:
            fanned = run_fig3(TINY, pool=pool)
        assert fanned.to_table() == sequential.to_table()
        assert fanned.density == sequential.density
        assert fanned.discontinuity == sequential.discontinuity

    def test_fig10_tables_identical(self):
        config = replace(TINY, workloads=("oltp-db2",))
        sequential = run_fig10(config)
        with ExperimentPool(jobs=2) as pool:
            fanned = run_fig10(config, pool=pool)
        assert fanned.to_table() == sequential.to_table()
        assert fanned.coverage == sequential.coverage
        assert fanned.speedup == sequential.speedup

    def test_ablation_tables_identical(self):
        config = replace(TINY, workloads=("dss-qry2",))
        sequential = run_source_ablation(config)
        with ExperimentPool(jobs=2) as pool:
            fanned = run_source_ablation(config, pool=pool)
        assert fanned.to_table() == sequential.to_table()
        assert fanned.coverage == sequential.coverage
