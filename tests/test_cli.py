"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.workload == "oltp-db2"
        assert args.instructions == 400_000

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--workload", "spec2017"])

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--engine", "boomerang"])


class TestCommands:
    def test_trace_prints_characterization(self, capsys):
        code = main(["trace", "--workload", "dss-qry2",
                     "--instructions", "30000", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "touched footprint" in out
        assert "wrong-path fraction" in out

    def test_trace_saves_bundle(self, tmp_path, capsys):
        target = tmp_path / "out"
        code = main(["trace", "--workload", "dss-qry2",
                     "--instructions", "30000", "--seed", "3",
                     "--output", str(target)])
        assert code == 0
        from repro.trace.serialize import load_bundle

        bundle = load_bundle(target.with_suffix(".npz"))
        assert bundle.workload == "dss-qry2"

    def test_simulate_reports_coverage(self, capsys):
        code = main(["simulate", "--workload", "dss-qry2",
                     "--instructions", "60000", "--seed", "3",
                     "--engine", "pif", "--cache-kb", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "miss coverage" in out

    def test_compare_matrix(self, capsys):
        code = main(["compare", "--instructions", "30000", "--seed", "3",
                     "--engines", "next-line,pif", "--cache-kb", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "oltp-db2" in out and "web-zeus" in out

    def test_compare_rejects_bad_engine_list(self, capsys):
        code = main(["compare", "--engines", "pif,nonsense"])
        assert code == 2


class TestTracesCommands:
    def test_build_ls_gc_cycle(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(["traces", "build", "--store", store,
                     "--workloads", "dss-qry2", "--instructions", "30000",
                     "--seed", "3", "--cores", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("built") >= 2

        code = main(["traces", "build", "--store", store,
                     "--workloads", "dss-qry2", "--instructions", "30000",
                     "--seed", "3", "--cores", "2"])
        assert code == 0
        assert "2 already cached" in capsys.readouterr().out

        code = main(["traces", "ls", "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "dss-qry2" in out and "current" in out

        code = main(["traces", "gc", "--store", store, "--all"])
        assert code == 0
        assert "removed 2" in capsys.readouterr().out

    def test_ls_format_json(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["traces", "build", "--store", store,
                     "--workloads", "dss-qry2", "--instructions", "30000",
                     "--seed", "3", "--cores", "1"]) == 0
        capsys.readouterr()
        assert main(["traces", "ls", "--store", store,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["store"] == store
        assert len(payload["generator"]) == 12
        assert len(payload["entries"]) == 1
        entry = payload["entries"][0]
        assert entry["workload"] == "dss-qry2"
        assert entry["state"] == "current"
        assert entry["instructions"] == 30000
        assert entry["size_bytes"] > 0

    def test_build_accepts_jobs_auto(self, tmp_path, capsys):
        code = main(["traces", "build", "--store", str(tmp_path / "s"),
                     "--workloads", "dss-qry2", "--instructions", "30000",
                     "--seed", "3", "--cores", "1", "--jobs", "auto"])
        assert code == 0

    def test_build_rejects_unknown_workload(self, tmp_path, capsys):
        code = main(["traces", "build", "--store", str(tmp_path),
                     "--workloads", "spec2017"])
        assert code == 2

    def test_commands_error_when_store_disabled(self, monkeypatch, capsys):
        from repro.trace.store import STORE_ENV

        monkeypatch.setenv(STORE_ENV, "off")
        assert main(["traces", "ls"]) == 2
        assert main(["traces", "gc"]) == 2
        assert main(["traces", "build"]) == 2


class TestSweepCommands:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        spec = {
            "name": "cli-sweep",
            "sweep": {
                "workloads": ["dss-qry2"],
                "instructions": 30_000,
                "seeds": 3,
                "cache": {"kb": 16},
                "engines": ["next-line", "tifs"],
            },
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_run_status_report_cycle(self, spec_path, tmp_path, capsys):
        out = str(tmp_path / "out")
        assert main(["sweep", "run", "--spec", spec_path,
                     "--out", out]) == 0
        captured = capsys.readouterr()
        assert "2 points computed" in captured.out

        assert main(["sweep", "status", "--out", out]) == 0
        status = capsys.readouterr().out
        assert "cli-sweep" in status and "complete" in status

        assert main(["sweep", "report", "--out", out]) == 0
        report = capsys.readouterr().out
        assert "dss-qry2" in report and "next-line" in report
        assert "Miss coverage" in report

        assert main(["sweep", "report", "--out", out,
                     "--format", "csv"]) == 0
        csv_out = capsys.readouterr().out
        assert csv_out.startswith("workload,engine,points,coverage")

    def test_status_format_json(self, spec_path, tmp_path, capsys):
        out = str(tmp_path / "out")
        assert main(["sweep", "run", "--spec", spec_path,
                     "--out", out, "--jobs", "auto"]) == 0
        capsys.readouterr()
        assert main(["sweep", "status", "--out", out,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "cli-sweep"
        assert payload["points"] == 2
        assert payload["computed"] == 2
        assert payload["missing"] == 0
        assert payload["complete"] is True

    def test_status_format_json_incomplete(self, spec_path, tmp_path,
                                           capsys):
        out = str(tmp_path / "out")
        assert main(["sweep", "run", "--spec", spec_path, "--out", out,
                     "--limit", "1"]) == 1
        capsys.readouterr()
        assert main(["sweep", "status", "--out", out,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["computed"] == 1
        assert payload["missing"] == 1
        assert payload["complete"] is False

    def test_run_with_limit_exits_nonzero_until_complete(self, spec_path,
                                                         tmp_path, capsys):
        out = str(tmp_path / "out")
        assert main(["sweep", "run", "--spec", spec_path, "--out", out,
                     "--limit", "1"]) == 1
        assert "1 remaining" in capsys.readouterr().out
        assert main(["sweep", "run", "--spec", spec_path,
                     "--out", out]) == 0
        assert "1 already stored" in capsys.readouterr().out

    def test_status_without_run_or_spec_errors(self, tmp_path, capsys):
        assert main(["sweep", "status", "--out",
                     str(tmp_path / "nowhere")]) == 2
        assert "no scenario recorded" in capsys.readouterr().err

    def test_invalid_spec_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "sweep": {
            "workloads": ["dss-qry2"], "instructions": 1000,
            "engines": ["boomerang"]}}))
        assert main(["sweep", "run", "--spec", str(bad),
                     "--out", str(tmp_path / "out")]) == 2
        assert "boomerang" in capsys.readouterr().err

    def test_rejects_bad_flags(self, spec_path, tmp_path, capsys):
        # --jobs is validated by argparse now ('auto' or positive int).
        with pytest.raises(SystemExit) as bad_jobs:
            main(["sweep", "run", "--spec", spec_path,
                  "--out", str(tmp_path), "--jobs", "0"])
        assert bad_jobs.value.code == 2
        with pytest.raises(SystemExit):
            main(["sweep", "run", "--spec", spec_path,
                  "--out", str(tmp_path), "--jobs", "many"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "report", "--out", "x",
                                       "--format", "xml"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "run", "--out", "x"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "run", "--spec", "x",
                                       "--out", "x", "--transport",
                                       "carrier-pigeon"])
        assert main(["sweep", "run", "--spec", spec_path,
                     "--out", str(tmp_path), "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["sweep", "run", "--spec", spec_path,
                     "--out", str(tmp_path), "--lease-timeout", "0"]) == 2
        assert "--lease-timeout" in capsys.readouterr().err

    def test_status_format_json_reports_failed_distinctly(
            self, spec_path, tmp_path, capsys, monkeypatch):
        """Quarantined points surface under the ``failed`` count, not
        folded into ``missing`` (the pending set) — the documented
        docs/api.md sweep-summary contract."""
        from repro.faults import FAULT_PLAN_ENV
        from repro.faults import plan as plan_module

        out = str(tmp_path / "out")
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({"faults": [
            {"site": "worker.task", "action": "raise", "match": "c0:",
             "times": None}]}))
        plan_module.reset()
        try:
            assert main(["sweep", "run", "--spec", spec_path, "--out",
                         out, "--max-retries", "0"]) == 3
        finally:
            monkeypatch.delenv(FAULT_PLAN_ENV)
            plan_module.reset()
        assert "quarantined" in capsys.readouterr().out

        assert main(["sweep", "status", "--out", out,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 2
        assert payload["computed"] == 0
        # Failed points are counted exactly once — as failed, not as
        # missing/pending.
        assert payload["missing"] == 0
        assert payload["complete"] is False


class TestDistCommands:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        spec = {
            "name": "cli-dist",
            "sweep": {
                "workloads": ["dss-qry2"],
                "instructions": 30_000,
                "seeds": 3,
                "cache": {"kb": 16},
                "engines": ["next-line", "tifs"],
            },
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_transport_local_matches_inline_bytes(self, spec_path,
                                                  tmp_path, capsys):
        inline = str(tmp_path / "inline")
        dist = str(tmp_path / "dist")
        assert main(["sweep", "run", "--spec", spec_path,
                     "--out", inline]) == 0
        assert main(["sweep", "run", "--spec", spec_path, "--out", dist,
                     "--transport", "local", "--workers", "2"]) == 0
        assert "2 points computed" in capsys.readouterr().out
        assert main(["sweep", "verify", "--out", inline,
                     "--repair"]) == 0
        assert main(["sweep", "verify", "--out", dist, "--repair"]) == 0
        capsys.readouterr()
        from pathlib import Path

        assert Path(inline, "results.jsonl").read_bytes() \
            == Path(dist, "results.jsonl").read_bytes()

    def test_worker_parser_and_validation(self, capsys):
        args = build_parser().parse_args(
            ["worker", "--coordinator", "http://127.0.0.1:8731"])
        assert args.worker_id is None and args.poll_interval == 0.5
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])  # --coordinator required
        assert main(["worker", "--coordinator", "http://127.0.0.1:1",
                     "--poll-interval", "0"]) == 2
        assert "--poll-interval" in capsys.readouterr().err

    def test_worker_against_dead_coordinator_exits_1(self, capsys):
        # Nothing listens on this port; the worker retries with backoff
        # then gives up with the transport exit code.
        assert main(["worker", "--coordinator", "http://127.0.0.1:9",
                     "--worker-id", "t0",
                     "--poll-interval", "0.01"]) == 1
        assert "giving up" in capsys.readouterr().err
