"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.workload == "oltp-db2"
        assert args.instructions == 400_000

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--workload", "spec2017"])

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--engine", "boomerang"])


class TestCommands:
    def test_trace_prints_characterization(self, capsys):
        code = main(["trace", "--workload", "dss-qry2",
                     "--instructions", "30000", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "touched footprint" in out
        assert "wrong-path fraction" in out

    def test_trace_saves_bundle(self, tmp_path, capsys):
        target = tmp_path / "out"
        code = main(["trace", "--workload", "dss-qry2",
                     "--instructions", "30000", "--seed", "3",
                     "--output", str(target)])
        assert code == 0
        from repro.trace.serialize import load_bundle

        bundle = load_bundle(target.with_suffix(".npz"))
        assert bundle.workload == "dss-qry2"

    def test_simulate_reports_coverage(self, capsys):
        code = main(["simulate", "--workload", "dss-qry2",
                     "--instructions", "60000", "--seed", "3",
                     "--engine", "pif", "--cache-kb", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "miss coverage" in out

    def test_compare_matrix(self, capsys):
        code = main(["compare", "--instructions", "30000", "--seed", "3",
                     "--engines", "next-line,pif", "--cache-kb", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "oltp-db2" in out and "web-zeus" in out

    def test_compare_rejects_bad_engine_list(self, capsys):
        code = main(["compare", "--engines", "pif,nonsense"])
        assert code == 2
