"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.workload == "oltp-db2"
        assert args.instructions == 400_000

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--workload", "spec2017"])

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--engine", "boomerang"])


class TestCommands:
    def test_trace_prints_characterization(self, capsys):
        code = main(["trace", "--workload", "dss-qry2",
                     "--instructions", "30000", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "touched footprint" in out
        assert "wrong-path fraction" in out

    def test_trace_saves_bundle(self, tmp_path, capsys):
        target = tmp_path / "out"
        code = main(["trace", "--workload", "dss-qry2",
                     "--instructions", "30000", "--seed", "3",
                     "--output", str(target)])
        assert code == 0
        from repro.trace.serialize import load_bundle

        bundle = load_bundle(target.with_suffix(".npz"))
        assert bundle.workload == "dss-qry2"

    def test_simulate_reports_coverage(self, capsys):
        code = main(["simulate", "--workload", "dss-qry2",
                     "--instructions", "60000", "--seed", "3",
                     "--engine", "pif", "--cache-kb", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "miss coverage" in out

    def test_compare_matrix(self, capsys):
        code = main(["compare", "--instructions", "30000", "--seed", "3",
                     "--engines", "next-line,pif", "--cache-kb", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "oltp-db2" in out and "web-zeus" in out

    def test_compare_rejects_bad_engine_list(self, capsys):
        code = main(["compare", "--engines", "pif,nonsense"])
        assert code == 2


class TestTracesCommands:
    def test_build_ls_gc_cycle(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(["traces", "build", "--store", store,
                     "--workloads", "dss-qry2", "--instructions", "30000",
                     "--seed", "3", "--cores", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("built") >= 2

        code = main(["traces", "build", "--store", store,
                     "--workloads", "dss-qry2", "--instructions", "30000",
                     "--seed", "3", "--cores", "2"])
        assert code == 0
        assert "2 already cached" in capsys.readouterr().out

        code = main(["traces", "ls", "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "dss-qry2" in out and "current" in out

        code = main(["traces", "gc", "--store", store, "--all"])
        assert code == 0
        assert "removed 2" in capsys.readouterr().out

    def test_build_rejects_unknown_workload(self, tmp_path, capsys):
        code = main(["traces", "build", "--store", str(tmp_path),
                     "--workloads", "spec2017"])
        assert code == 2

    def test_commands_error_when_store_disabled(self, monkeypatch, capsys):
        from repro.trace.store import STORE_ENV

        monkeypatch.setenv(STORE_ENV, "off")
        assert main(["traces", "ls"]) == 2
        assert main(["traces", "gc"]) == 2
        assert main(["traces", "build"]) == 2
