"""Chaos over trace replication: cold stores + damaged transfers.

The PR's headline lock: two ``--transport local`` workers started with
*empty* trace stores, under injected mid-transfer truncation and
corruption (``replicate.fetch`` / ``replicate.chunk``), must converge
to a ``results.jsonl`` byte-identical (after ``verify --repair``) to an
inline run's — and every archive admitted into the replica store must
re-hash to the coordinator-advertised SHA-256.  Persistent corruption
must quarantine with a structured ``task-failed`` (never a hang, never
a silently-wrong trace).
"""

import json
import os

import pytest

from repro.experiments.parallel import shutdown_shared_pool
from repro.faults import FAULT_PLAN_ENV
from repro.faults import plan as plan_module
from repro.scenarios import (ResultsStore, parse_spec, run_sweep,
                             verify_store)
from repro.trace.replicate import CHUNK_ENV, TraceExport
from repro.trace.serialize import archive_sha256
from repro.trace.store import TraceStore

SMALL = {
    "name": "replicate-chaos",
    "sweep": {
        "workloads": ["dss-qry2"], "instructions": 30_000, "seeds": 3,
        "cores": 2, "cache": {"kb": 16},
        "engines": ["next-line",
                    {"name": "pif", "params": {"sab_count": 4,
                                               "sab_window_regions": 3}}],
    },
}

quiet = {"log": lambda line: None}


@pytest.fixture(autouse=True)
def pristine_faults():
    plan_module.reset()
    yield
    plan_module.reset()
    shutdown_shared_pool()


def spec():
    return parse_spec(SMALL)


def arm_env(monkeypatch, *faults):
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({"faults": list(faults)}))
    plan_module.reset()


def disarm(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV)
    plan_module.reset()


def run_distributed(out, **kwargs):
    from repro.dist import run_distributed_sweep

    kwargs.setdefault("workers", 2)
    kwargs.setdefault("lease_timeout", 30.0)
    return run_distributed_sweep(spec(), out, **quiet, **kwargs)


class TestReplicationChaos:
    def test_cold_workers_survive_damaged_transfers_byte_identically(
            self, tmp_path, monkeypatch):
        """The headline lock.  Every fetch's first attempt dies before
        transfer, the second loses half a chunk mid-flight (forcing a
        resume), the third is corrupted in flight (forcing the
        hash-mismatch restart) — and the cold-store run still converges
        to the inline run's bytes, admitting only verified archives."""
        clean = tmp_path / "clean"
        fault = tmp_path / "fault"
        replica = tmp_path / "replica"
        run_sweep(spec(), clean, **quiet)

        monkeypatch.setenv(CHUNK_ENV, "8192")   # force multi-chunk
        arm_env(
            monkeypatch,
            {"site": "replicate.fetch", "action": "raise",
             "match": "attempt=0", "times": None},
            {"site": "replicate.chunk", "action": "truncate",
             "match": "attempt=1", "times": None},
            {"site": "replicate.chunk", "action": "corrupt",
             "match": "attempt=2", "times": None},
        )
        summary = run_distributed(fault, worker_store=replica)
        assert summary.complete() and not summary.degraded()
        assert (summary.computed, summary.failed) == (4, 0)

        disarm(monkeypatch)
        verify_store(spec(), fault, repair=True)
        verify_store(spec(), clean, repair=True)
        assert (fault / "results.jsonl").read_bytes() \
            == (clean / "results.jsonl").read_bytes()

        # No unverified archive was ever admitted: every replica entry
        # re-hashes to the coordinator's advertised transfer hash, and
        # no partial leftovers survive a completed run's fetches.
        ads = {ad["key"]: ad["sha256"]
               for ad in TraceExport(TraceStore.from_env().root).listing()}
        admitted = list(replica.glob("*.npz"))
        assert len(admitted) >= 2
        for path in admitted:
            assert archive_sha256(path) == ads[path.name]

        # Resume recomputes nothing: the sweep is already complete.
        rerun = run_distributed(fault, worker_store=replica)
        assert (rerun.skipped, rerun.computed) == (4, 0)

    def test_persistent_corruption_quarantines_structurally(
            self, tmp_path, monkeypatch):
        """Corrupting every chunk of every attempt exhausts the fetch
        retry budget; the task fails with a structured ReplicationError
        report and quarantines — proving the worker fetch path is live
        (without it these faults would never fire) and that a wrong
        trace is never silently computed.  The fault-free rerun heals
        over the same replica store."""
        out = tmp_path / "out"
        replica = tmp_path / "replica"
        arm_env(monkeypatch, {"site": "replicate.chunk",
                              "action": "corrupt", "times": None})
        summary = run_distributed(out, worker_store=replica,
                                  max_retries=1)
        assert summary.complete() and summary.degraded()
        assert (summary.computed, summary.failed) == (0, 4)

        records = ResultsStore(out).load_current()
        failed = [record["failed"] for record in records.values()
                  if "failed" in record]
        assert len(failed) == 4
        for payload in failed:
            assert payload["kind"] == "error"
            assert payload["error"].startswith(
                "ReplicationError: could not replicate")

        # Nothing unverified was admitted along the way.
        assert list(replica.glob("*.npz")) == []

        disarm(monkeypatch)
        rerun = run_distributed(out, worker_store=replica)
        assert rerun.complete() and not rerun.degraded()
        assert rerun.computed == 4
