"""Chaos locks: injected faults → degraded completion → convergence.

The failure-model acceptance properties (DESIGN.md "Failure model"):

* a sweep under an armed fault plan never wedges — transient faults
  are retried to success, persistent ones are quarantined and the
  sweep completes *degraded*;
* a rerun retries exactly the quarantined set, and after
  ``verify --repair`` the faulted store is **byte-identical** to a
  clean run's repaired store (chaos equivalence — mirrored by the CI
  ``chaos-smoke`` job);
* corrupt on-disk accelerators (baseline sidecar, cached train plans)
  self-heal: the damaged entry only costs recomputation.
"""

import json

import pytest

from repro.experiments.parallel import WORKER_DIED, shutdown_shared_pool
from repro.faults import FAULT_PLAN_ENV, FaultPlan, install
from repro.faults import plan as plan_module
from repro.scenarios import (ResultsStore, parse_spec, run_sweep,
                             status_summary, verify_store)
from repro.scenarios.results import BaselineSidecar

#: Same scale as the runner/service tests (shared cached traces): two
#: trace groups (cores 0 and 1) x two engine lanes = 4 points.
SMALL = {
    "name": "chaos",
    "sweep": {
        "workloads": ["dss-qry2"], "instructions": 30_000, "seeds": 3,
        "cores": 2, "cache": {"kb": 16},
        "engines": ["next-line",
                    {"name": "pif", "params": {"sab_count": 4,
                                               "sab_window_regions": 3}}],
    },
}

quiet = {"log": lambda line: None}


@pytest.fixture(autouse=True)
def pristine_faults():
    """No plan armed before or after each test, and no pooled workers
    left attached to a fault-plan environment."""
    plan_module.reset()
    yield
    plan_module.reset()
    shutdown_shared_pool()


def spec():
    return parse_spec(SMALL)


def arm_env(monkeypatch, *faults):
    """Arm a plan through the environment — the parent process AND the
    worker initializer snapshot both read it, like real chaos runs."""
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({"faults": list(faults)}))
    plan_module.reset()


def successful_records(out):
    return {digest: record
            for digest, record in ResultsStore(out).load_current().items()
            if "failed" not in record}


class TestTransientFaults:
    def test_serial_raise_on_first_attempt_retries_to_success(self,
                                                              tmp_path):
        plan = FaultPlan.parse({"faults": [
            {"site": "worker.task", "action": "raise",
             "match": "attempt=0", "times": None}]})
        with install(plan):
            summary = run_sweep(spec(), tmp_path / "out", **quiet)
        assert summary.complete() and not summary.degraded()
        assert (summary.computed, summary.failed) == (4, 0)
        assert summary.quarantined == ()

        ref = tmp_path / "ref"
        run_sweep(spec(), ref, **quiet)
        assert successful_records(tmp_path / "out") \
            == successful_records(ref)

    def test_pooled_kill_on_first_attempt_retries_to_success(
            self, tmp_path, monkeypatch):
        """Every first-attempt task is killed (os._exit mid-task); the
        pool is rebuilt, the tasks retried, and the sweep still
        completes with records identical to a clean serial run."""
        arm_env(monkeypatch, {"site": "worker.task", "action": "kill",
                              "match": "attempt=0", "times": None})
        summary = run_sweep(spec(), tmp_path / "out", jobs=2, **quiet)
        assert summary.complete() and not summary.degraded()
        assert (summary.computed, summary.failed) == (4, 0)

        monkeypatch.delenv(FAULT_PLAN_ENV)
        plan_module.reset()
        ref = tmp_path / "ref"
        run_sweep(spec(), ref, **quiet)
        assert successful_records(tmp_path / "out") \
            == successful_records(ref)


class TestQuarantine:
    def test_serial_poison_task_quarantines_and_rerun_retries(self,
                                                              tmp_path):
        out = tmp_path / "out"
        plan = FaultPlan.parse({"faults": [
            {"site": "worker.task", "action": "raise", "match": "c0:",
             "times": None}]})
        with install(plan):
            summary = run_sweep(spec(), out, max_retries=1, **quiet)
        assert summary.complete() and summary.degraded()
        assert (summary.computed, summary.failed) == (2, 2)
        assert summary.quarantined == ("dss-qry2/i30000/s3/c0",)

        # The quarantine is durable and structured.
        records = ResultsStore(out).load_current()
        failed = [record for record in records.values()
                  if "failed" in record]
        assert len(failed) == 2
        for record in failed:
            assert record["failed"]["attempts"] == 2
            assert record["failed"]["kind"] == "error"
            assert "InjectedFault" in record["failed"]["error"]
            assert "metrics" not in record

        # Status accounting reports the quarantine, not completion.
        accounting = status_summary(spec(), ResultsStore(out))
        assert accounting["failed"] == 2
        assert accounting["computed"] == 2
        assert not accounting["complete"]

        # The fault-free rerun retries exactly the quarantined set.
        rerun = run_sweep(spec(), out, **quiet)
        assert (rerun.skipped, rerun.computed) == (2, 2)
        assert rerun.complete() and not rerun.degraded()
        assert status_summary(spec(), ResultsStore(out))["complete"]

    def test_pooled_poison_kill_quarantines_with_worker_died(
            self, tmp_path, monkeypatch):
        """A task that kills every pool it is given (isolation mode
        included) quarantines with the deterministic worker-died text
        while the healthy trace group still completes."""
        out = tmp_path / "out"
        arm_env(monkeypatch, {"site": "worker.task", "action": "kill",
                              "match": "c0:", "times": None})
        summary = run_sweep(spec(), out, jobs=2, max_retries=1, **quiet)
        assert summary.complete() and summary.degraded()
        assert (summary.computed, summary.failed) == (2, 2)
        assert summary.quarantined == ("dss-qry2/i30000/s3/c0",)
        failed = [record for record
                  in ResultsStore(out).load_current().values()
                  if "failed" in record]
        assert {record["failed"]["kind"] for record in failed} \
            == {"worker-died"}
        assert {record["failed"]["error"] for record in failed} \
            == {WORKER_DIED}


class TestChaosEquivalence:
    def test_fault_run_converges_to_clean_bytes(self, tmp_path,
                                                monkeypatch):
        """The whole acceptance flow: fault run completes degraded →
        fault-free rerun retries the quarantined set → verify --repair
        canonicalizes both stores to identical bytes."""
        clean = tmp_path / "clean"
        fault = tmp_path / "fault"
        run_sweep(spec(), clean, jobs=2, **quiet)
        shutdown_shared_pool()

        arm_env(monkeypatch,
                {"site": "worker.task", "action": "kill",
                 "match": "c0:", "times": None},
                {"site": "sidecar.append", "action": "truncate",
                 "times": 1})
        degraded = run_sweep(spec(), fault, jobs=2, max_retries=1, **quiet)
        assert degraded.degraded()

        monkeypatch.delenv(FAULT_PLAN_ENV)
        plan_module.reset()
        rerun = run_sweep(spec(), fault, jobs=2, **quiet)
        assert rerun.complete() and rerun.computed == 2

        verify_store(spec(), fault, repair=True)
        clean_report = verify_store(spec(), clean, repair=True)
        assert clean_report.clean()
        # After repair both fscks come back clean...
        assert verify_store(spec(), fault).clean()
        # ...and the canonical stores are byte-identical.
        assert (fault / "results.jsonl").read_bytes() \
            == (clean / "results.jsonl").read_bytes()


class TestAcceleratorSelfHeal:
    def test_corrupt_baseline_sidecar_only_costs_recomputation(
            self, tmp_path):
        out = tmp_path / "out"
        run_sweep(spec(), out, **quiet)
        sidecar = BaselineSidecar(out)
        assert sidecar.path.exists()
        # Shear the tail mid-record and append garbage — the torn-write
        # shape a kill used to leave.
        damaged = sidecar.path.read_bytes()[:-9] + b"\n{not json\n"
        sidecar.path.write_bytes(damaged)

        ref = tmp_path / "ref"
        run_sweep(spec(), ref, **quiet)
        rerun = run_sweep(spec(), out, **quiet)  # resumes over the damage
        assert rerun.complete() and rerun.skipped == 4
        assert successful_records(out) == successful_records(ref)

    def test_corrupt_plan_cache_self_heals(self, tmp_path):
        """A ``plans.load`` corrupt fault damages the cached PIF train
        plan on disk mid-run; the loader must treat it as a miss,
        rebuild, and produce records identical to the clean run."""
        from repro.sim.trainplan import PLANS_DIR
        from repro.trace.store import TraceStore

        ref = tmp_path / "ref"
        run_sweep(spec(), ref, **quiet)  # warms the plans/ cache
        store = TraceStore.from_env()
        if store is None or not (store.root / PLANS_DIR).is_dir():
            pytest.skip("trace store disabled; no plan cache to corrupt")

        out = tmp_path / "out"
        plan = FaultPlan.parse({"faults": [
            {"site": "plans.load", "action": "corrupt", "times": None}]})
        with install(plan):
            summary = run_sweep(spec(), out, **quiet)
        assert summary.complete() and not summary.degraded()
        assert summary.computed == 4
        assert successful_records(out) == successful_records(ref)
