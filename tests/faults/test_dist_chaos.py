"""Chaos over the wire: dist.* fault sites → expiry, requeue, converge.

Extends the PR 8 chaos locks across the distributed tier, using the
same acceptance properties: a fault-injected ``--transport local`` run
never wedges — transient worker deaths are requeued to success,
poisoned groups quarantine with the exact inline-runner record payload
— and after ``verify --repair`` the faulted store is byte-identical to
a clean run's.

Sites exercised (all keyed like ``worker.task``):

* ``dist.worker`` — fires in the worker just before the group walk; a
  ``kill`` here is a worker dying mid-task (the lease-expiry path);
* ``dist.result`` — fires after the walk, before the report is sent; a
  ``kill`` here loses *finished* work, which must be recomputed
  identically by the requeued attempt;
* ``dist.lease`` — fires in the coordinator on every lease request; a
  ``raise`` here exercises the worker's transport-retry path against a
  500ing coordinator.
"""

import json

import pytest

from repro.experiments.parallel import WORKER_DIED, shutdown_shared_pool
from repro.faults import FAULT_PLAN_ENV
from repro.faults import plan as plan_module
from repro.scenarios import (ResultsStore, parse_spec, run_sweep,
                             status_summary, verify_store)

#: Same scale as tests/faults/test_chaos.py (shared cached traces):
#: two trace groups (cores 0 and 1) x two engine lanes = 4 points.
SMALL = {
    "name": "dist-chaos",
    "sweep": {
        "workloads": ["dss-qry2"], "instructions": 30_000, "seeds": 3,
        "cores": 2, "cache": {"kb": 16},
        "engines": ["next-line",
                    {"name": "pif", "params": {"sab_count": 4,
                                               "sab_window_regions": 3}}],
    },
}

quiet = {"log": lambda line: None}


@pytest.fixture(autouse=True)
def pristine_faults():
    plan_module.reset()
    yield
    plan_module.reset()
    shutdown_shared_pool()


def spec():
    return parse_spec(SMALL)


def arm_env(monkeypatch, *faults):
    """Arm a plan through the environment — the coordinator process AND
    every spawned worker subprocess read it (fresh counters each), like
    real chaos runs."""
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({"faults": list(faults)}))
    plan_module.reset()


def disarm(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV)
    plan_module.reset()


def run_distributed(out, **kwargs):
    from repro.dist import run_distributed_sweep

    kwargs.setdefault("workers", 2)
    kwargs.setdefault("lease_timeout", 30.0)
    return run_distributed_sweep(spec(), out, **quiet, **kwargs)


class TestTransientWorkerDeath:
    def test_kill_mid_group_requeues_and_converges_to_clean_bytes(
            self, tmp_path, monkeypatch):
        """The satellite lock: a ``dist.worker`` kill plan murders every
        first attempt mid-group; the coordinator observes the deaths,
        expires the leases, requeues on respawned workers, and the
        final store is byte-identical to a fault-free run after
        ``verify --repair``."""
        clean = tmp_path / "clean"
        fault = tmp_path / "fault"
        run_sweep(spec(), clean, **quiet)

        arm_env(monkeypatch, {"site": "dist.worker", "action": "kill",
                              "match": "attempt=0", "times": None})
        summary = run_distributed(fault)
        assert summary.complete() and not summary.degraded()
        assert (summary.computed, summary.failed) == (4, 0)

        disarm(monkeypatch)
        verify_store(spec(), fault, repair=True)
        verify_store(spec(), clean, repair=True)
        assert (fault / "results.jsonl").read_bytes() \
            == (clean / "results.jsonl").read_bytes()

    def test_kill_after_walk_recomputes_identical_records(
            self, tmp_path, monkeypatch):
        """``dist.result`` kills the worker *after* the walk but before
        the report — finished work is lost, and the requeued attempt
        must recompute records identical to a clean run's."""
        clean = tmp_path / "clean"
        fault = tmp_path / "fault"
        run_sweep(spec(), clean, **quiet)

        arm_env(monkeypatch, {"site": "dist.result", "action": "kill",
                              "match": "attempt=0", "times": None})
        summary = run_distributed(fault)
        assert summary.complete() and not summary.degraded()
        assert summary.computed == 4

        disarm(monkeypatch)
        verify_store(spec(), fault, repair=True)
        verify_store(spec(), clean, repair=True)
        assert (fault / "results.jsonl").read_bytes() \
            == (clean / "results.jsonl").read_bytes()


class TestDistQuarantine:
    def test_poison_group_quarantines_with_worker_died(self, tmp_path,
                                                       monkeypatch):
        """A group that kills every worker it is leased to quarantines
        with the deterministic worker-died payload (the inline pool's
        exact record shape) while the healthy group completes."""
        out = tmp_path / "out"
        arm_env(monkeypatch, {"site": "dist.worker", "action": "kill",
                              "match": "c0:", "times": None})
        summary = run_distributed(out, max_retries=1)
        assert summary.complete() and summary.degraded()
        assert (summary.computed, summary.failed) == (2, 2)
        assert summary.quarantined == ("dss-qry2/i30000/s3/c0",)

        records = ResultsStore(out).load_current()
        failed = [record for record in records.values()
                  if "failed" in record]
        assert len(failed) == 2
        for record in failed:
            assert record["failed"]["attempts"] == 2
            assert record["failed"]["kind"] == "worker-died"
            assert record["failed"]["error"] == WORKER_DIED

        # Status accounting sees the quarantine distinctly.
        accounting = status_summary(spec(), ResultsStore(out))
        assert accounting["failed"] == 2
        assert accounting["computed"] == 2
        assert not accounting["complete"]

        # The fault-free rerun (any mode) retries exactly that set.
        disarm(monkeypatch)
        rerun = run_distributed(out)
        assert (rerun.skipped, rerun.computed) == (2, 2)
        assert rerun.complete() and not rerun.degraded()

    def test_raising_group_quarantines_with_inline_error_format(
            self, tmp_path, monkeypatch):
        """A ``raise`` fault inside the worker's walk becomes a
        structured task-failed report whose error text matches the
        inline pool's ``TypeName: message`` format exactly — so the
        quarantine records are mode-independent.  The inline reference
        runs with ``jobs=2`` so both modes shard the groups
        identically (the injected-fault text embeds the task key,
        which includes the lane count)."""
        dist_out = tmp_path / "dist"
        inline_out = tmp_path / "inline"
        plan = {"site": "worker.task", "action": "raise", "match": "c0:",
                "times": None}
        arm_env(monkeypatch, plan)
        summary = run_distributed(dist_out, max_retries=1)
        assert summary.degraded()
        run_sweep(spec(), inline_out, jobs=2, max_retries=1, **quiet)
        disarm(monkeypatch)

        def failures(out):
            return {digest: record["failed"]
                    for digest, record
                    in ResultsStore(out).load_current().items()
                    if "failed" in record}

        dist_failures = failures(dist_out)
        assert dist_failures == failures(inline_out)
        for payload in dist_failures.values():
            assert payload["kind"] == "error"
            assert payload["error"].startswith("InjectedFault: ")


class TestCoordinatorFaults:
    def test_lease_endpoint_raising_is_survived_by_workers(
            self, tmp_path, monkeypatch):
        """``dist.lease`` raises on the first two lease requests (the
        coordinator answers 500); workers back off, retry, and the
        sweep still completes cleanly."""
        out = tmp_path / "out"
        arm_env(monkeypatch, {"site": "dist.lease", "action": "raise",
                              "times": 2})
        summary = run_distributed(out)
        assert summary.complete() and not summary.degraded()
        assert summary.computed == 4
