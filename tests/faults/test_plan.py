"""Fault-plan parsing, validation, and deterministic firing.

The harness is only trustworthy if misconfiguration fails loudly (a
silently ignored chaos plan fakes coverage) and firing is a pure
function of (plan, per-process hit sequence) — both locked here.
"""

import json
import multiprocessing

import pytest

from repro.faults import (FAULT_PLAN_ENV, KILL_EXIT_CODE, Fault, FaultPlan,
                          FaultPlanError, InjectedFault, fire, install)
from repro.faults import plan as plan_module


@pytest.fixture(autouse=True)
def pristine_injector():
    """Every test starts and ends with no armed plan."""
    plan_module.reset()
    yield
    plan_module.reset()


def make_plan(*entries):
    return FaultPlan.parse({"faults": list(entries)})


class TestParsing:
    def test_minimal_entry_gets_defaults(self):
        plan = make_plan({"site": "worker.task", "action": "raise"})
        assert plan.faults == (Fault(site="worker.task", action="raise",
                                     match="", after=0, times=1,
                                     exception="injected"),)

    def test_all_fields_round_trip(self):
        plan = make_plan({"site": "trace.open", "action": "raise",
                          "match": "dss", "after": 2, "times": None,
                          "exception": "format"})
        fault = plan.faults[0]
        assert fault.after == 2 and fault.times is None
        assert fault.exception == "format"

    def test_non_object_plan_rejected(self):
        with pytest.raises(FaultPlanError, match="must be an object"):
            FaultPlan.parse(["not", "a", "plan"])

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan"):
            FaultPlan.parse({"faults": [], "retries": 3})

    def test_missing_faults_list_rejected(self):
        with pytest.raises(FaultPlanError, match="'faults' list"):
            FaultPlan.parse({})

    def test_unknown_entry_key_named(self):
        with pytest.raises(FaultPlanError, match=r"faults\[0\].*when"):
            make_plan({"site": "s", "action": "raise", "when": "always"})

    def test_bad_action_rejected(self):
        with pytest.raises(FaultPlanError, match="action must be one of"):
            make_plan({"site": "s", "action": "explode"})

    def test_bad_exception_rejected(self):
        with pytest.raises(FaultPlanError, match="exception must be"):
            make_plan({"site": "s", "action": "raise",
                       "exception": "oserror"})

    def test_bool_is_not_an_integer(self):
        # bool is an int subclass; the schema must still reject it.
        with pytest.raises(FaultPlanError, match="'after'"):
            make_plan({"site": "s", "action": "raise", "after": True})
        with pytest.raises(FaultPlanError, match="'times'"):
            make_plan({"site": "s", "action": "raise", "times": True})

    def test_negative_gates_rejected(self):
        with pytest.raises(FaultPlanError, match="'after'"):
            make_plan({"site": "s", "action": "raise", "after": -1})
        with pytest.raises(FaultPlanError, match="'times'"):
            make_plan({"site": "s", "action": "raise", "times": 0})

    def test_bad_json_text_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_text("{nope")


class TestFromEnv:
    PLAN = {"faults": [{"site": "worker.task", "action": "raise"}]}

    def test_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None

    def test_inline_json(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(self.PLAN))
        plan = FaultPlan.from_env()
        assert plan.faults[0].site == "worker.task"

    def test_json_file(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(self.PLAN))
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert FaultPlan.from_env().faults[0].action == "raise"

    def test_yaml_file(self, monkeypatch, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "plan.yaml"
        path.write_text("faults:\n  - site: worker.task\n"
                        "    action: raise\n    match: 's3:'\n")
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        plan = FaultPlan.from_env()
        assert plan.faults[0].match == "s3:"

    def test_missing_file_raises(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULT_PLAN_ENV, str(tmp_path / "absent.json"))
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.from_env()


class TestFiring:
    def test_no_plan_is_a_noop(self):
        assert fire("worker.task", "anything") is None

    def test_raise_action_raises_with_site_and_key(self):
        plan = make_plan({"site": "worker.task", "action": "raise"})
        with install(plan):
            with pytest.raises(InjectedFault,
                               match=r"worker\.task \(dss:attempt=0\)"):
                fire("worker.task", "dss:attempt=0")

    def test_format_exception_flavor(self):
        from repro.trace.serialize import TraceFormatError

        plan = make_plan({"site": "store.get", "action": "raise",
                          "exception": "format"})
        with install(plan):
            with pytest.raises(TraceFormatError, match="injected fault"):
                fire("store.get", "archive.npz")

    def test_site_and_match_gate(self):
        plan = make_plan({"site": "worker.task", "action": "raise",
                          "match": "s3:"})
        with install(plan):
            assert fire("trace.open", "s3:") is None      # wrong site
            assert fire("worker.task", "s4:c0") is None   # no match
            with pytest.raises(InjectedFault):
                fire("worker.task", "dss:s3:c0")

    def test_after_skips_then_times_caps(self):
        plan = make_plan({"site": "s", "action": "raise", "after": 1,
                          "times": 2})
        with install(plan):
            assert fire("s", "k") is None        # hit 1: skipped (after)
            for _ in range(2):                   # hits 2-3: fired
                with pytest.raises(InjectedFault):
                    fire("s", "k")
            assert fire("s", "k") is None        # times exhausted

    def test_unlimited_times(self):
        plan = make_plan({"site": "s", "action": "raise", "times": None})
        with install(plan):
            for _ in range(5):
                with pytest.raises(InjectedFault):
                    fire("s", "k")

    def test_truncate_fault_returned_to_site(self):
        plan = make_plan({"site": "results.append", "action": "truncate"})
        with install(plan):
            fault = fire("results.append", "results.jsonl")
            assert fault.action == "truncate"
            assert fire("results.append", "results.jsonl") is None

    def test_install_restores_previous_state(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        plan = make_plan({"site": "s", "action": "raise"})
        with install(plan):
            pass
        assert fire("s", "k") is None

    def test_reset_rereads_environment(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert fire("s", "k") is None  # caches "no plan"
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(
            {"faults": [{"site": "s", "action": "raise"}]}))
        assert fire("s", "k") is None  # still cached
        plan_module.reset()
        with pytest.raises(InjectedFault):
            fire("s", "k")


def _killed_child(plan_text):
    """Child body for the kill test (module-level: must be picklable)."""
    import os

    os.environ[FAULT_PLAN_ENV] = plan_text
    plan_module.reset()
    fire("worker.task", "victim:attempt=0")
    os._exit(0)  # unreachable when the fault fires


class TestKillAction:
    def test_kill_exits_process_with_the_marker_code(self):
        plan_text = json.dumps(
            {"faults": [{"site": "worker.task", "action": "kill"}]})
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_killed_child, args=(plan_text,))
        child.start()
        child.join(30)
        assert child.exitcode == KILL_EXIT_CODE
