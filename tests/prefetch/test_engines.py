"""Baseline prefetch engines."""

import pytest

from repro.prefetch import make_prefetcher
from repro.prefetch.base import NullPrefetcher, as_block_list
from repro.prefetch.discontinuity import DiscontinuityPrefetcher
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.tifs import TIFSPrefetcher


def demand(engine, block, hit=False, was_prefetched=False):
    return engine.on_demand_access(block, block * 64, 0, hit, was_prefetched)


class TestNull:
    def test_never_prefetches(self):
        engine = NullPrefetcher()
        assert demand(engine, 5) == []
        engine.on_retire(0, 0, True)  # must be a harmless no-op


class TestAsBlockList:
    def test_dedup_preserving_order(self):
        assert as_block_list([3, 1, 3, 2, 1]) == [3, 1, 2]


class TestNextLine:
    def test_prefetches_next_degree_blocks(self):
        engine = NextLinePrefetcher(degree=3)
        assert demand(engine, 10) == [11, 12, 13]

    def test_miss_trigger_skips_hits(self):
        engine = NextLinePrefetcher(degree=2, trigger="miss")
        assert demand(engine, 10, hit=True) == []
        assert demand(engine, 10, hit=False) == [11, 12]

    def test_same_block_burst_absorbed(self):
        engine = NextLinePrefetcher(degree=2)
        demand(engine, 10)
        assert demand(engine, 10) == []
        assert demand(engine, 11) == [12, 13]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)
        with pytest.raises(ValueError):
            NextLinePrefetcher(trigger="sometimes")

    def test_reset(self):
        engine = NextLinePrefetcher(degree=1)
        demand(engine, 10)
        engine.reset()
        assert engine.stats.issued == 0
        assert demand(engine, 10) == [11]


class TestTIFS:
    def test_learns_and_replays_miss_stream(self):
        engine = TIFSPrefetcher(window_blocks=4)
        stream = [100, 250, 400, 550, 700]
        for block in stream:
            demand(engine, block, hit=False)
        # Revisit: the first miss triggers a replay of the recorded
        # successors.
        prefetches = demand(engine, stream[0], hit=False)
        assert set(stream[1:5]) <= set(prefetches)

    def test_would_be_miss_logging_keeps_history_alive(self):
        engine = TIFSPrefetcher(window_blocks=4)
        stream = [100, 250, 400]
        for block in stream:
            demand(engine, block, hit=False)
        # Second pass: hits on prefetched blocks must still be logged.
        collected = set(demand(engine, stream[0], hit=False))
        collected.update(demand(engine, stream[1], hit=True,
                                was_prefetched=True))
        collected.update(demand(engine, stream[2], hit=True,
                                was_prefetched=True))
        # Third pass still replays (the would-be misses kept the log
        # contiguous); cumulative prefetches cover the whole stream.
        collected.update(demand(engine, stream[0], hit=False))
        assert set(stream[1:]) <= collected

    def test_plain_hits_not_logged(self):
        engine = TIFSPrefetcher()
        demand(engine, 100, hit=True, was_prefetched=False)
        assert len(engine.history) == 0

    def test_no_replay_without_recurrence(self):
        engine = TIFSPrefetcher()
        assert demand(engine, 100, hit=False) == []
        assert demand(engine, 200, hit=False) == []

    def test_stream_advance_prefetches_deeper(self):
        engine = TIFSPrefetcher(window_blocks=2)
        stream = [100, 250, 400, 550]
        for block in stream:
            demand(engine, block, hit=False)
        first = demand(engine, stream[0], hit=False)
        assert 250 in first
        deeper = demand(engine, 250, hit=True, was_prefetched=True)
        assert 400 in deeper or 550 in deeper

    def test_reset(self):
        engine = TIFSPrefetcher()
        demand(engine, 100, hit=False)
        engine.reset()
        assert len(engine.history) == 0


class TestDiscontinuity:
    def test_learns_single_transition(self):
        engine = DiscontinuityPrefetcher(next_line_degree=0)
        demand(engine, 100, hit=False)
        demand(engine, 500, hit=False)  # learn 100 -> 500
        prefetches = demand(engine, 100, hit=True)
        assert 500 in prefetches

    def test_sequential_transition_not_learned(self):
        engine = DiscontinuityPrefetcher(next_line_degree=0)
        demand(engine, 100, hit=False)
        demand(engine, 101, hit=False)
        assert demand(engine, 100, hit=True) == []

    def test_next_line_assist(self):
        engine = DiscontinuityPrefetcher(next_line_degree=2)
        demand(engine, 100, hit=False)
        prefetches = demand(engine, 300, hit=False)
        assert {301, 302} <= set(prefetches)

    def test_one_transition_limit(self):
        # Only the most recent successor is kept per source block.
        engine = DiscontinuityPrefetcher(next_line_degree=0)
        demand(engine, 100, hit=False)
        demand(engine, 500, hit=False)
        demand(engine, 100, hit=False)
        demand(engine, 900, hit=False)
        prefetches = demand(engine, 100, hit=True)
        assert 900 in prefetches and 500 not in prefetches


class TestStride:
    def test_detects_confirmed_stride(self):
        engine = StridePrefetcher(degree=2)
        demand(engine, 10)
        demand(engine, 20)
        prefetches = demand(engine, 30)  # stride 10 confirmed
        assert prefetches == [40, 50]

    def test_unconfirmed_stride_is_silent(self):
        engine = StridePrefetcher()
        demand(engine, 10)
        assert demand(engine, 20) == []

    def test_broken_stride_resets(self):
        engine = StridePrefetcher(degree=1)
        demand(engine, 10)
        demand(engine, 20)
        demand(engine, 30)
        assert demand(engine, 99) == []


class TestFactory:
    @pytest.mark.parametrize("name", [
        "none", "next-line", "next-line-miss", "stride", "discontinuity",
        "tifs", "pif", "pif-no-tlsep"])
    def test_makes_each(self, name):
        engine = make_prefetcher(name)
        assert hasattr(engine, "on_demand_access")

    def test_pif_no_tlsep_flag(self):
        engine = make_prefetcher("pif-no-tlsep")
        assert not engine.separate_trap_levels

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_prefetcher("boomerang")
