"""The paper's Figure 5 walkthrough, encoded step by step.

Figure 5 traces seven retirement steps through the spatial and temporal
compactors with a region of one preceding and two succeeding blocks.
This test is the executable version of that figure: every intermediate
state the paper draws is asserted.
"""

from repro.common.addressing import RegionGeometry
from repro.common.bitvec import BitVector
from repro.core.spatial import SpatialCompactor
from repro.core.temporal import TemporalCompactor

#: Figure 5's example geometry: A-1 | A | A+1 A+2.
GEOMETRY = RegionGeometry(preceding=1, succeeding=2)

BLOCK_A = 1000
BLOCK_B = 2000

PC_A = BLOCK_A * 64 + 16        # "PCA", an instruction in block A
PC_A_PLUS2 = (BLOCK_A + 2) * 64  # "PCA+2", in block A+2
PC_A_MINUS1 = (BLOCK_A - 1) * 64  # "PCA-1", in block A-1
PC_B = BLOCK_B * 64             # "PCB", in a distant block B


def vector(record):
    return str(record.bit_vector(GEOMETRY))


def test_figure5_walkthrough():
    spatial = SpatialCompactor(GEOMETRY)
    temporal = TemporalCompactor(entries=4)
    history = []

    def retire(pc):
        region = spatial.feed(pc)
        if region is None:
            return None
        survivor = temporal.feed(region)
        if survivor is not None:
            history.append(survivor)
        return region

    # Step 1: PCA retires; a new region opens with trigger PCA, vector 000.
    assert retire(PC_A) is None

    # Step 2: PCA+2 retires; block A+2 joins the region (vector 001).
    assert retire(PC_A_PLUS2) is None

    # Step 3: PCA-1 retires; block A-1 joins (vector 101).
    assert retire(PC_A_MINUS1) is None

    # Step 4: PCB retires, outside the region.  The record PCA(101) is
    # emitted to the temporal compactor and recorded; a new region opens
    # at PCB.
    emitted = retire(PC_B)
    assert emitted is not None
    assert emitted.trigger_pc == PC_A
    assert vector(emitted) == "101"
    assert [r.trigger_pc for r in history] == [PC_A]
    assert [r.trigger_pc for r in temporal.tracked_records()] == [PC_A]

    # Step 5: PCA retires again; PCB(000) is emitted and recorded.  The
    # temporal compactor now tracks PCB(000) (MRU) then PCA(101).
    emitted = retire(PC_A)
    assert emitted.trigger_pc == PC_B
    assert vector(emitted) == "000"
    assert [r.trigger_pc for r in history] == [PC_A, PC_B]
    assert [r.trigger_pc for r in temporal.tracked_records()] == [PC_B, PC_A]

    # Step 6: PCA+2 retires; silently absorbed into the open region.
    assert retire(PC_A_PLUS2) is None

    # Step 7: PCB retires.  PCA(001) is emitted — the second visit only
    # touched A and A+2, so its vector is a *subset* of the tracked
    # PCA(101).  The temporal compactor DISCARDS it (nothing new reaches
    # the history buffer) and promotes PCA to MRU.  This is why the
    # discard rule is subset containment, not equality.
    emitted = retire(PC_B)
    assert emitted.trigger_pc == PC_A
    assert vector(emitted) == "001"
    assert [r.trigger_pc for r in history] == [PC_A, PC_B], \
        "the repeated region must not be re-recorded"
    assert [r.trigger_pc for r in temporal.tracked_records()] == [PC_A, PC_B]
    assert temporal.discarded == 1


def test_figure5_subset_variant():
    """A sparser revisit (vector 001 vs tracked 101) is also discarded —
    the subset rule, not exact equality."""
    temporal = TemporalCompactor(entries=4)
    from repro.core.spatial import SpatialRegionRecord

    full = SpatialRegionRecord(PC_A, BitVector.from_string("101").mask, False)
    subset = SpatialRegionRecord(PC_A, BitVector.from_string("001").mask, False)
    superset = SpatialRegionRecord(PC_A, BitVector.from_string("111").mask, False)

    assert temporal.feed(full) is full
    assert temporal.feed(subset) is None, "subset must be discarded"
    assert temporal.feed(superset) is superset, \
        "a record with new blocks must be recorded"
