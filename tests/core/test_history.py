"""History buffer and index table."""

import pytest
from hypothesis import given, strategies as st

from repro.core.history import HistoryBuffer, IndexTable


class TestHistoryBuffer:
    def test_append_read(self):
        history = HistoryBuffer(4)
        position = history.append("a")
        assert position == 0
        assert history.read(0) == "a"

    def test_monotonic_positions(self):
        history = HistoryBuffer(2)
        assert [history.append(i) for i in range(5)] == list(range(5))
        assert history.tail == 5

    def test_overwrite_semantics(self):
        history = HistoryBuffer(2)
        for value in range(4):
            history.append(value)
        assert history.read(0) is None
        assert history.read(1) is None
        assert history.read(2) == 2
        assert history.oldest_live == 2

    def test_read_future_returns_none(self):
        history = HistoryBuffer(4)
        history.append("a")
        assert history.read(1) is None
        assert history.read(-1) is None

    def test_read_run_stops_at_tail(self):
        history = HistoryBuffer(8)
        for value in range(3):
            history.append(value)
        run = history.read_run(1, 10)
        assert run == [(1, 1), (2, 2)]

    def test_read_run_stops_at_overwritten(self):
        history = HistoryBuffer(2)
        for value in range(4):
            history.append(value)
        assert history.read_run(1, 3) == []
        assert history.read_run(2, 3) == [(2, 2), (3, 3)]

    def test_unbounded_mode(self):
        history = HistoryBuffer(None)
        for value in range(100):
            history.append(value)
        assert history.read(0) == 0
        assert history.oldest_live == 0
        assert len(history) == 100

    def test_len_bounded(self):
        history = HistoryBuffer(3)
        assert len(history) == 0
        for value in range(5):
            history.append(value)
        assert len(history) == 3

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            HistoryBuffer(0)

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=64))
    def test_live_window_always_readable(self, capacity, appends):
        history = HistoryBuffer(capacity)
        for value in range(appends):
            history.append(value)
        for position in range(history.oldest_live, history.tail):
            assert history.read(position) == position


class TestIndexTable:
    def test_unbounded_mapping(self):
        index = IndexTable(None)
        index.insert(5, 100)
        assert index.lookup(5) == 100
        index.insert(5, 200)
        assert index.lookup(5) == 200
        assert index.lookup(6) is None
        assert index.hits == 2 and index.misses == 1

    def test_bounded_eviction(self):
        index = IndexTable(capacity=2, associativity=2)  # one set
        index.insert(0 << 2, 1)
        index.insert(1 << 2, 2)
        index.insert(2 << 2, 3)
        assert index.lookup(0 << 2) is None

    def test_bounded_lru_within_set(self):
        index = IndexTable(capacity=2, associativity=2)
        index.insert(0 << 2, 1)
        index.insert(1 << 2, 2)
        index.lookup(0 << 2)           # promote
        index.insert(2 << 2, 3)
        assert index.lookup(0 << 2) == 1
        assert index.lookup(1 << 2) is None

    def test_len(self):
        index = IndexTable(capacity=8, associativity=2)
        index.insert(1, 1)
        index.insert(2, 2)
        assert len(index) == 2
        assert len(IndexTable(None)) == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            IndexTable(capacity=10, associativity=4)
        with pytest.raises(ValueError):
            IndexTable(capacity=0)
