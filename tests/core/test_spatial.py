"""Spatial compactor and region records."""

from hypothesis import given, strategies as st

from repro.common.addressing import RegionGeometry
from repro.core.spatial import (
    SpatialCompactor,
    SpatialRegionRecord,
    compact_stream,
)

GEOMETRY = RegionGeometry(preceding=2, succeeding=5)


def pc_of(block, offset=0):
    return block * 64 + offset * 4


class TestSpatialRegionRecord:
    def test_blocks_replay_order(self):
        # trigger block 100, bits for offsets -1 and +2.
        bits = (1 << GEOMETRY.bit_index(-1)) | (1 << GEOMETRY.bit_index(2))
        record = SpatialRegionRecord(pc_of(100), bits, False)
        assert record.trigger_block() == 100
        assert record.blocks(GEOMETRY) == [100, 99, 102]

    def test_block_count(self):
        record = SpatialRegionRecord(pc_of(100), 0, False)
        assert record.block_count(GEOMETRY) == 1

    def test_subset(self):
        small = SpatialRegionRecord(pc_of(5), 0b001, False)
        big = SpatialRegionRecord(pc_of(5), 0b011, False)
        other = SpatialRegionRecord(pc_of(6), 0b001, False)
        assert small.is_subset_of(big, GEOMETRY)
        assert not big.is_subset_of(small, GEOMETRY)
        assert not small.is_subset_of(other, GEOMETRY)


class TestSpatialCompactor:
    def test_first_feed_opens_region(self):
        compactor = SpatialCompactor(GEOMETRY)
        assert compactor.feed(pc_of(10)) is None
        record = compactor.flush()
        assert record.trigger_pc == pc_of(10)
        assert record.bits == 0

    def test_within_region_sets_bits(self):
        compactor = SpatialCompactor(GEOMETRY)
        compactor.feed(pc_of(10))
        compactor.feed(pc_of(11))
        compactor.feed(pc_of(9))
        record = compactor.flush()
        vector = record.bit_vector(GEOMETRY)
        assert vector.test(GEOMETRY.bit_index(1))
        assert vector.test(GEOMETRY.bit_index(-1))
        assert vector.popcount() == 2

    def test_trigger_reentry_is_silent(self):
        compactor = SpatialCompactor(GEOMETRY)
        compactor.feed(pc_of(10))
        compactor.feed(pc_of(10, offset=3))
        record = compactor.flush()
        assert record.bits == 0

    def test_out_of_region_emits(self):
        compactor = SpatialCompactor(GEOMETRY)
        compactor.feed(pc_of(10))
        emitted = compactor.feed(pc_of(100))
        assert emitted is not None
        assert emitted.trigger_pc == pc_of(10)
        final = compactor.flush()
        assert final.trigger_pc == pc_of(100)

    def test_backward_out_of_region_emits(self):
        compactor = SpatialCompactor(GEOMETRY)
        compactor.feed(pc_of(10))
        emitted = compactor.feed(pc_of(7))  # offset -3 < preceding bound
        assert emitted is not None

    def test_tagged_follows_trigger(self):
        compactor = SpatialCompactor(GEOMETRY)
        compactor.feed(pc_of(10), tagged=True)
        compactor.feed(pc_of(11), tagged=False)
        record = compactor.flush()
        assert record.tagged

    def test_flush_empty(self):
        assert SpatialCompactor(GEOMETRY).flush() is None
        compactor = SpatialCompactor(GEOMETRY)
        compactor.feed(pc_of(1))
        compactor.flush()
        assert compactor.flush() is None

    def test_compact_stream_convenience(self):
        records = list(compact_stream(
            [(pc_of(10), False), (pc_of(11), False), (pc_of(200), False)],
            GEOMETRY))
        assert [r.trigger_pc for r in records] == [pc_of(10), pc_of(200)]


class TestCompactionProperties:
    @given(st.lists(st.integers(min_value=0, max_value=60), min_size=1,
                    max_size=200))
    def test_every_block_is_encoded_somewhere(self, blocks):
        """Compaction is lossy about order/repetition but never about
        footprint: every accessed block appears in some record."""
        stream = [(pc_of(b), False) for b in blocks]
        records = list(compact_stream(stream, GEOMETRY))
        covered = set()
        for record in records:
            covered.update(record.blocks(GEOMETRY))
        assert set(blocks) <= covered

    @given(st.lists(st.integers(min_value=0, max_value=60), min_size=1,
                    max_size=200))
    def test_record_count_bounded_by_stream_length(self, blocks):
        stream = [(pc_of(b), False) for b in blocks]
        records = list(compact_stream(stream, GEOMETRY))
        assert 1 <= len(records) <= len(blocks)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1,
                    max_size=100))
    def test_triggers_come_from_stream(self, blocks):
        stream = [(pc_of(b), False) for b in blocks]
        pcs = {pc for pc, _ in stream}
        for record in compact_stream(stream, GEOMETRY):
            assert record.trigger_pc in pcs

    def test_sequential_run_compacts_to_one_record_per_region(self):
        # 8 sequential blocks = trigger + 5 succeeding, then a new region.
        stream = [(pc_of(b), False) for b in range(100, 108)]
        records = list(compact_stream(stream, GEOMETRY))
        assert len(records) == 2
        assert records[0].block_count(GEOMETRY) == 6
