"""The assembled PIF engine on crafted streams."""


from repro.common.config import PIFConfig
from repro.core.pif import AccessOrderPIF, ProactiveInstructionFetch


def pc_of(block):
    return block * 64


def retire_sequence(pif, blocks, trap_level=0, tagged=True):
    for block in blocks:
        pif.on_retire(pc_of(block), trap_level, tagged)


def demand(pif, block, trap_level=0, hit=False, was_prefetched=False):
    """A demand access; defaults model a tagged miss (the allocation
    trigger of Section 4.3 — there is no cache in these unit tests, so
    an un-prefetched access misses)."""
    return pif.on_demand_access(block, pc_of(block), trap_level, hit,
                                was_prefetched)


#: A stream of far-apart blocks: every block opens its own region.
STREAM = [100, 300, 500, 700, 900, 1100, 1300, 1500]


class TestRecordAndReplay:
    def test_learns_and_replays_a_stream(self):
        pif = ProactiveInstructionFetch(PIFConfig(sab_window_regions=3))
        # First pass: record.  Each access is a (tagged) demand fetch,
        # then its retirement.
        for block in STREAM:
            demand(pif, block)
            pif.on_retire(pc_of(block), 0, tagged=True)
        # Region records close lazily: push one more distant block.
        pif.on_retire(pc_of(9999), 0, tagged=True)

        # Second pass: the first fetch triggers the index and the
        # replay must prefetch ahead of the demand stream.
        prefetched = set(demand(pif, STREAM[0]))
        for block in STREAM[1:]:
            assert block in prefetched, f"block {block} not prefetched ahead"
            prefetched.update(demand(pif, block, hit=True,
                                     was_prefetched=True))

    def test_no_prediction_without_history(self):
        pif = ProactiveInstructionFetch()
        assert demand(pif, 12345) == []

    def test_untagged_fetch_does_not_trigger(self):
        pif = ProactiveInstructionFetch()
        for block in STREAM:
            demand(pif, block)
            pif.on_retire(pc_of(block), 0, tagged=True)
        pif.on_retire(pc_of(9999), 0, tagged=True)
        assert demand(pif, STREAM[0], hit=True, was_prefetched=True) == []

    def test_tagged_hit_does_not_allocate(self):
        """Regression: allocation requires a *miss*, not just a tagged
        fetch — a tagged L1-I hit must not start a stream (Section 4.3)."""
        pif = ProactiveInstructionFetch()
        for block in STREAM:
            demand(pif, block)
            pif.on_retire(pc_of(block), 0, tagged=True)
        pif.on_retire(pc_of(9999), 0, tagged=True)
        assert demand(pif, STREAM[0], hit=True) == []
        assert pif.stats.stream_allocations == 0

    def test_window_match_does_not_suppress_allocation_on_tagged_miss(self):
        """Regression: a head-region SAB match returns no new blocks, but
        a tagged miss must still be allowed to (re)allocate a stream."""
        pif = ProactiveInstructionFetch(PIFConfig(sab_window_regions=3))
        for block in STREAM:
            demand(pif, block)
            pif.on_retire(pc_of(block), 0, tagged=True)
        pif.on_retire(pc_of(9999), 0, tagged=True)
        first = demand(pif, STREAM[0])
        assert first and pif.stats.stream_allocations == 1
        # The active SAB's head region still covers STREAM[0]; a repeat
        # tagged miss on it matches the window (empty advance) yet must
        # reallocate from the index rather than being swallowed.
        again = demand(pif, STREAM[0])
        assert pif.stats.stream_allocations == 2
        assert set(STREAM[1:3]) <= set(again)

    def test_tagged_retire_controls_index(self):
        pif = ProactiveInstructionFetch()
        # Record with tagged=False: regions are logged but not indexed.
        retire_sequence(pif, STREAM, tagged=False)
        pif.on_retire(pc_of(9999), 0, tagged=False)
        assert demand(pif, STREAM[0]) == []

    def test_spatial_neighbours_prefetched_via_bit_vector(self):
        pif = ProactiveInstructionFetch(PIFConfig(sab_window_regions=2))
        # Region: trigger 100 with succeeding blocks 101, 102.
        dense = [100, 101, 102, 500, 900]
        for block in dense:
            demand(pif, block)
            pif.on_retire(pc_of(block), 0, tagged=True)
        pif.on_retire(pc_of(9999), 0, tagged=True)
        burst = demand(pif, 100)
        assert {101, 102} <= set(burst)


class TestTrapLevelSeparation:
    def test_channels_are_independent(self):
        pif = ProactiveInstructionFetch()
        retire_sequence(pif, STREAM, trap_level=0)
        retire_sequence(pif, [2000, 2200, 2400], trap_level=1)
        pif.on_retire(pc_of(8888), 0, tagged=True)
        pif.on_retire(pc_of(9999), 1, tagged=True)
        stats = pif.channel_stats()
        assert set(stats) == {0, 1}
        assert stats[0].regions_recorded > stats[1].regions_recorded

    def test_merged_channel_mode(self):
        pif = ProactiveInstructionFetch(separate_trap_levels=False)
        retire_sequence(pif, STREAM, trap_level=0)
        retire_sequence(pif, [2000, 2200], trap_level=1)
        assert set(pif.channel_stats()) == {0}

    def test_handler_stream_replay_at_tl1(self):
        pif = ProactiveInstructionFetch(PIFConfig(sab_window_regions=3))
        handler_stream = [4000, 4200, 4400, 4600]
        for block in handler_stream:
            demand(pif, block, trap_level=1)
            pif.on_retire(pc_of(block), 1, tagged=True)
        pif.on_retire(pc_of(7777), 1, tagged=True)
        burst = demand(pif, handler_stream[0], trap_level=1)
        # The 3-region window covers the trigger's region plus two more.
        assert set(handler_stream[1:3]) <= set(burst)


class TestLifecycle:
    def test_reset_clears_everything(self):
        pif = ProactiveInstructionFetch()
        retire_sequence(pif, STREAM)
        pif.on_retire(pc_of(9999), 0, tagged=True)
        pif.reset()
        assert demand(pif, STREAM[0]) == []
        assert pif.stats.issued == 0

    def test_compaction_ratio_reflects_loops(self):
        pif = ProactiveInstructionFetch()
        # A two-region loop repeated: iterations after the first are
        # discarded by the temporal compactor.
        for _ in range(16):
            retire_sequence(pif, [100, 500])
        pif.on_retire(pc_of(9999), 0, tagged=True)
        assert pif.compaction_ratio(0) > 0.8

    def test_geometry_property(self):
        pif = ProactiveInstructionFetch()
        assert pif.geometry.total_blocks == 8


class TestAccessOrderVariant:
    def test_records_from_fetch_side(self):
        pif = AccessOrderPIF(PIFConfig(sab_window_regions=3))
        for block in STREAM:
            demand(pif, block)
        demand(pif, 9999)
        burst = demand(pif, STREAM[0])
        # The 3-region window covers the trigger's region plus two more.
        assert set(STREAM[1:3]) <= set(burst)

    def test_ignores_retirement(self):
        pif = AccessOrderPIF()
        retire_sequence(pif, STREAM)
        pif.on_retire(pc_of(9999), 0, tagged=True)
        assert demand(pif, STREAM[0]) == []

    def test_name(self):
        assert AccessOrderPIF().name == "pif-access-order"
