"""Stream address buffers: allocation, matching, advancement."""

from repro.common.addressing import RegionGeometry
from repro.core.history import HistoryBuffer
from repro.core.sab import SABFile, StreamAddressBuffer
from repro.core.spatial import SpatialRegionRecord

GEOMETRY = RegionGeometry(preceding=2, succeeding=5)


def region(block, succ_offsets=()):
    bits = 0
    for offset in succ_offsets:
        bits |= 1 << GEOMETRY.bit_index(offset)
    return SpatialRegionRecord(block * 64, bits, False)


def history_of(regions):
    history = HistoryBuffer(64)
    for record in regions:
        history.append(record)
    return history


class TestStreamAddressBuffer:
    def test_allocate_returns_initial_burst(self):
        history = history_of([region(10, (1,)), region(30), region(50, (2,))])
        sab = StreamAddressBuffer(GEOMETRY, window_regions=2)
        burst = sab.allocate(history, 0)
        assert burst == [10, 11, 30]
        assert sab.covers(10) and sab.covers(30)
        assert not sab.covers(50)

    def test_match_in_head_does_not_advance(self):
        history = history_of([region(10, (1,)), region(30)])
        sab = StreamAddressBuffer(GEOMETRY, window_regions=2)
        sab.allocate(history, 0)
        assert sab.advance(history, 11) == []
        assert sab.covers(10)

    def test_match_deeper_slides_window(self):
        history = history_of([region(10), region(30), region(50), region(70)])
        sab = StreamAddressBuffer(GEOMETRY, window_regions=2)
        sab.allocate(history, 0)          # window: 10, 30
        new_blocks = sab.advance(history, 30)
        assert new_blocks == [50]         # window now: 30, 50
        assert not sab.covers(10)
        assert sab.covers(50)

    def test_non_member_returns_none(self):
        history = history_of([region(10)])
        sab = StreamAddressBuffer(GEOMETRY, window_regions=2)
        sab.allocate(history, 0)
        assert sab.advance(history, 999) is None

    def test_window_stops_at_tail(self):
        history = history_of([region(10)])
        sab = StreamAddressBuffer(GEOMETRY, window_regions=4)
        burst = sab.allocate(history, 0)
        assert burst == [10]
        # A later append becomes visible on the next advance.
        history.append(region(30))
        assert sab.advance(history, 10) == []  # head match: no slide
        sab2 = StreamAddressBuffer(GEOMETRY, window_regions=4)
        sab2.allocate(history, 0)
        assert 30 in [b for b in sab2.window[1][1].blocks(GEOMETRY)] or \
            sab2.covers(30)

    def test_full_stream_replay(self):
        regions = [region(10 * i, (1,)) for i in range(1, 9)]
        history = history_of(regions)
        sab = StreamAddressBuffer(GEOMETRY, window_regions=3)
        prefetched = set(sab.allocate(history, 0))
        for record in regions:
            result = sab.advance(history, record.trigger_block())
            if result is not None:
                prefetched.update(result)
        for record in regions:
            assert record.trigger_block() in prefetched


class TestSABFile:
    def test_allocate_and_route(self):
        history = history_of([region(10), region(30), region(50)])
        sabs = SABFile(GEOMETRY, count=2, window_regions=2)
        sabs.allocate(history, 0)
        assert sabs.advance(history, 30) is not None
        assert sabs.advance(history, 999) is None

    def test_lru_replacement(self):
        history = history_of([region(i * 10) for i in range(1, 8)])
        sabs = SABFile(GEOMETRY, count=2, window_regions=1)
        sabs.allocate(history, 0)   # stream A: covers block 10
        sabs.allocate(history, 2)   # stream B: covers block 30
        sabs.allocate(history, 4)   # evicts stream A
        assert sabs.advance(history, 10) is None
        assert sabs.advance(history, 30) is not None

    def test_match_promotes_stream(self):
        history = history_of([region(i * 10) for i in range(1, 8)])
        sabs = SABFile(GEOMETRY, count=2, window_regions=1)
        sabs.allocate(history, 0)   # A covers 10
        sabs.allocate(history, 2)   # B covers 30
        sabs.advance(history, 10)   # touch A -> B becomes LRU
        sabs.allocate(history, 4)   # evicts B
        assert sabs.advance(history, 30) is None
        assert sabs.advance(history, 10) is not None

    def test_reset(self):
        history = history_of([region(10)])
        sabs = SABFile(GEOMETRY, count=2, window_regions=1)
        sabs.allocate(history, 0)
        sabs.reset()
        assert sabs.advance(history, 10) is None
        assert sabs.active_streams() == []
