"""Content-addressed trace store: keys, hits, invalidation, eviction."""

import os
import time

import numpy as np
import pytest

from repro.trace import store as store_module
from repro.trace.bundle import TraceBundle
from repro.trace.records import FetchAccess, RetiredInstruction
from repro.trace.store import (
    TraceKey,
    TraceStore,
    generator_version_hash,
    store_root_from_env,
)


def bundle_for(key: TraceKey) -> TraceBundle:
    return TraceBundle(
        workload=key.workload, core=key.core, seed=key.seed,
        retires=[RetiredInstruction(0x40_0000, 0)],
        accesses=[FetchAccess(0x40_0000 >> 6, 0x40_0000, 0, False)],
        instructions=key.instructions,
    )


KEY = TraceKey(workload="unit-wl", instructions=1000, seed=7, core=0)


class TestRoundtrip:
    def test_miss_on_empty_store(self, tmp_path):
        assert TraceStore(tmp_path).get(KEY) is None

    def test_put_then_get(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(KEY, bundle_for(KEY), extra={"frontend_stats": {}})
        loaded = store.get(KEY)
        assert loaded is not None
        bundle, extra = loaded
        assert bundle.workload == KEY.workload
        assert extra == {"frontend_stats": {}}
        assert np.array_equal(bundle.retire_pc,
                              bundle_for(KEY).retire_pc)

    def test_distinct_keys_distinct_archives(self, tmp_path):
        store = TraceStore(tmp_path)
        other = KEY._replace(core=1)
        store.put(KEY, bundle_for(KEY))
        store.put(other, bundle_for(other))
        assert len(store.entries()) == 2
        assert store.get(other)[0].core == 1

    def test_corrupt_archive_heals_to_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.put(KEY, bundle_for(KEY))
        path.write_bytes(b"garbage")
        assert store.get(KEY) is None
        assert not path.exists()

    def test_identity_mismatch_heals_to_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        wrong = TraceBundle(workload="other", core=9, seed=1,
                            instructions=5)
        store.put(KEY, wrong)
        assert store.get(KEY) is None
        assert not store.path_for(KEY).exists()

    def test_v2_archive_in_store_still_served(self, tmp_path):
        """A compressed v2 archive placed under the current key (e.g. a
        store populated before the v3 migration whose generator hash
        still matches) is read, not healed away."""
        from repro.trace.serialize import save_bundle_atomic

        store = TraceStore(tmp_path)
        save_bundle_atomic(
            bundle_for(KEY), store.path_for(KEY),
            extra={"store_key": dict(KEY._asdict())}, format_version=2)
        loaded = store.get(KEY)
        assert loaded is not None
        assert loaded[0].workload == KEY.workload
        assert np.array_equal(loaded[0].retire_pc,
                              bundle_for(KEY).retire_pc)

    def test_new_archives_memory_map(self, tmp_path):
        """Store puts write v3; gets map the columns read-only."""
        store = TraceStore(tmp_path)
        store.put(KEY, bundle_for(KEY))
        bundle, _ = store.get(KEY)
        assert isinstance(bundle.access_block.base, np.memmap)
        assert not bundle.access_block.flags.writeable

    def test_truncated_archive_heals_to_miss(self, tmp_path):
        """A store archive cut mid-file (lost central directory) is
        removed and reported as a miss, like any corrupt entry."""
        store = TraceStore(tmp_path)
        path = store.put(KEY, bundle_for(KEY))
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        assert store.get(KEY) is None
        assert not path.exists()

    def test_misplaced_archive_wrong_instruction_scale_is_a_miss(
            self, tmp_path):
        """An archive renamed to a different-instructions path must not
        be served (the bundle's own ``instructions`` is the retired
        count, so only the embedded key can catch this)."""
        store = TraceStore(tmp_path)
        path = store.put(KEY, bundle_for(KEY))
        misplaced_key = KEY._replace(instructions=999_999)
        path.rename(store.path_for(misplaced_key))
        assert store.get(misplaced_key) is None
        assert not store.path_for(misplaced_key).exists()
        assert store.get(KEY) is None  # original path gone too


class TestKeyInvalidation:
    def test_generator_hash_change_invalidates(self, tmp_path, monkeypatch):
        """A new generator version must never see old archives."""
        store = TraceStore(tmp_path)
        store.put(KEY, bundle_for(KEY))
        assert store.get(KEY) is not None
        monkeypatch.setattr(store_module, "_generator_hash_cache",
                            "f" * 64)
        assert store.get(KEY) is None  # different key -> different path
        assert len(store.entries()) == 1
        assert not store.entries()[0].current

    def test_hash_covers_generator_sources(self, tmp_path):
        """The digest must respond to generator source changes (simulated
        via a scratch package tree)."""
        package = tmp_path / "repro"
        (package / "workloads").mkdir(parents=True)
        (package / "workloads" / "a.py").write_text("x = 1\n")
        first = store_module._hash_sources(package)
        (package / "workloads" / "a.py").write_text("x = 2\n")
        second = store_module._hash_sources(package)
        assert first != second

    def test_hash_covers_renames(self, tmp_path):
        package = tmp_path / "repro"
        (package / "pipeline").mkdir(parents=True)
        (package / "pipeline" / "a.py").write_text("x = 1\n")
        first = store_module._hash_sources(package)
        (package / "pipeline" / "a.py").rename(
            package / "pipeline" / "b.py")
        second = store_module._hash_sources(package)
        assert first != second


class TestGc:
    def test_keeps_current_entries(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(KEY, bundle_for(KEY))
        assert store.gc() == []
        assert len(store.entries()) == 1

    def test_removes_stale_hash_entries(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.put(KEY, bundle_for(KEY))
        stale = path.with_name(path.name.replace(
            f"g{generator_version_hash()[:12]}", "g" + "0" * 12))
        path.rename(stale)
        removed = store.gc()
        assert removed == [stale]
        assert store.entries() == []

    def test_preserves_foreign_npz_files(self, tmp_path):
        """Archives the store did not create are not its to delete —
        not even under --all."""
        store = TraceStore(tmp_path)
        stray = tmp_path / "user-saved-trace.npz"
        stray.write_bytes(b"x")
        assert store.gc() == []
        assert store.gc(remove_all=True) == []
        assert stray.exists()

    def test_removes_abandoned_scratch_files(self, tmp_path):
        """Stale staging files are swept; fresh ones (a live writer's)
        are left alone."""
        store = TraceStore(tmp_path)
        staging = tmp_path / ".tmp"
        staging.mkdir()
        abandoned = staging / "entry.npz.1234.npz"
        abandoned.write_bytes(b"x")
        past = time.time() - 2 * TraceStore._SCRATCH_MAX_AGE_SECONDS
        os.utime(abandoned, (past, past))
        live = staging / "entry.npz.5678.npz"
        live.write_bytes(b"x")
        assert store.gc() == [abandoned]
        assert live.exists()

    def test_max_bytes_evicts_lru_first(self, tmp_path):
        store = TraceStore(tmp_path)
        old_key = KEY._replace(core=1)
        old_path = store.put(old_key, bundle_for(old_key))
        new_path = store.put(KEY, bundle_for(KEY))
        past = time.time() - 3600
        os.utime(old_path, (past, past))
        removed = store.gc(max_bytes=new_path.stat().st_size)
        assert removed == [old_path]
        assert store.get(KEY) is not None

    def test_remove_all(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(KEY, bundle_for(KEY))
        store.put(KEY._replace(seed=8), bundle_for(KEY._replace(seed=8)))
        assert len(store.gc(remove_all=True)) == 2
        assert store.total_bytes() == 0


class TestGcReplicationRace:
    """gc racing a concurrent fetcher: live ``.part`` files and freshly
    admitted entries are exempt, abandoned ones are reclaimed."""

    def _partial(self, store, name, age_seconds=0.0):
        staging = store.root / store_module.PARTIAL_DIR
        staging.mkdir(exist_ok=True)
        part = staging / f"{name}.part"
        part.write_bytes(b"half an archive")
        if age_seconds:
            past = time.time() - age_seconds
            os.utime(part, (past, past))
        return part

    def test_fresh_part_file_survives_gc(self, tmp_path):
        store = TraceStore(tmp_path)
        live = self._partial(store, "inflight.npz")
        assert store.gc() == []
        assert live.exists()

    def test_abandoned_part_file_is_reclaimed(self, tmp_path):
        store = TraceStore(tmp_path)
        orphan = self._partial(
            store, "orphan.npz",
            age_seconds=2 * TraceStore._SCRATCH_MAX_AGE_SECONDS)
        live = self._partial(store, "inflight.npz")
        assert store.gc() == [orphan]
        assert live.exists()

    def test_remove_all_clears_partials(self, tmp_path):
        store = TraceStore(tmp_path)
        live = self._partial(store, "inflight.npz")
        assert live in store.gc(remove_all=True)
        assert not live.exists()

    def test_budget_eviction_spares_freshly_admitted_entries(
            self, tmp_path):
        """A budgeted gc racing the fetcher that just admitted (or the
        reader about to open) an archive must not evict it: entries
        inside the grace window stay even over budget."""
        store = TraceStore(tmp_path)
        first = store.put(KEY, bundle_for(KEY))
        other = KEY._replace(seed=8)
        second = store.put(other, bundle_for(other))
        assert store.gc(max_bytes=1) == []
        assert first.exists() and second.exists()
        # Once the grace lapses, LRU eviction applies as usual.
        past = time.time() - 2 * TraceStore._FRESH_GRACE_SECONDS
        os.utime(first, (past, past))
        assert store.gc(max_bytes=second.stat().st_size) == [first]
        assert second.exists()


class TestEnvConfiguration:
    def test_explicit_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(store_module.STORE_ENV, str(tmp_path / "s"))
        assert store_root_from_env() == tmp_path / "s"
        assert TraceStore.from_env().root == tmp_path / "s"

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "DISABLED"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(store_module.STORE_ENV, value)
        assert store_root_from_env() is None
        assert TraceStore.from_env() is None

    def test_default_under_cache_home(self, monkeypatch, tmp_path):
        monkeypatch.delenv(store_module.STORE_ENV, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert store_root_from_env() == tmp_path / "repro" / "traces"
