"""Stream derivation helpers."""

from hypothesis import given, strategies as st

from repro.trace.records import FetchAccess, RetiredInstruction
from repro.trace.streams import (
    access_block_stream,
    collapse_block_runs,
    correct_path_block_stream,
    deduplicate_consecutive,
    retire_block_stream,
    split_stream_by_trap_level,
    unique_blocks,
)


class TestCollapseBlockRuns:
    def test_collapses_same_block(self):
        pcs = [(0, 0), (4, 0), (8, 0), (64, 0)]
        collapsed = list(collapse_block_runs(pcs))
        assert [r.pc for r in collapsed] == [0, 64]

    def test_block_reentry_emits_new_record(self):
        pcs = [(0, 0), (64, 0), (4, 0)]
        collapsed = list(collapse_block_runs(pcs))
        assert [r.pc for r in collapsed] == [0, 64, 4]

    def test_trap_level_change_forces_record(self):
        # A handler entering mid-block must start a fresh record.
        pcs = [(0, 0), (8, 1), (12, 0)]
        collapsed = list(collapse_block_runs(pcs))
        assert [(r.pc, r.trap_level) for r in collapsed] == [
            (0, 0), (8, 1), (12, 0)]

    def test_preserves_first_pc_of_run(self):
        pcs = [(100, 0), (104, 0)]
        collapsed = list(collapse_block_runs(pcs))
        assert collapsed == [RetiredInstruction(100, 0)]

    @given(st.lists(st.integers(min_value=0, max_value=2048), max_size=100))
    def test_no_adjacent_duplicate_blocks(self, raw_pcs):
        collapsed = list(collapse_block_runs((pc, 0) for pc in raw_pcs))
        blocks = [r.pc >> 6 for r in collapsed]
        assert all(a != b for a, b in zip(blocks, blocks[1:]))


class TestStreamViews:
    def test_retire_block_stream(self):
        retires = [RetiredInstruction(0, 0), RetiredInstruction(130, 0)]
        assert retire_block_stream(retires) == [0, 2]

    def test_access_streams_and_wrong_path_filter(self):
        accesses = [
            FetchAccess(1, 64, 0, False),
            FetchAccess(9, 576, 0, True),
            FetchAccess(2, 128, 0, False),
        ]
        assert access_block_stream(accesses) == [1, 9, 2]
        assert correct_path_block_stream(accesses) == [1, 2]

    def test_split_by_trap_level_orders_levels(self):
        retires = [
            RetiredInstruction(0, 1),
            RetiredInstruction(64, 0),
            RetiredInstruction(128, 1),
        ]
        split = split_stream_by_trap_level(retires)
        assert [level for level, _ in split] == [0, 1]
        assert [r.pc for r in dict(split)[1]] == [0, 128]

    def test_unique_blocks(self):
        assert unique_blocks([1, 2, 2, 3]) == 3

    def test_deduplicate_consecutive(self):
        assert list(deduplicate_consecutive([1, 1, 2, 1, 1])) == [1, 2, 1]
