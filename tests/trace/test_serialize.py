"""On-disk trace format roundtrips and error paths (v3 mmap + v2
read-compat)."""

import json
import zipfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.bundle import TraceBundle
from repro.trace.records import FetchAccess, RetiredInstruction
from repro.trace.serialize import (
    TraceFormatError,
    load_bundle,
    load_bundle_extra,
    mmap_enabled,
    save_bundle,
    save_bundle_atomic,
)


def small_bundle():
    return TraceBundle(
        workload="roundtrip",
        core=3,
        seed=99,
        retires=[RetiredInstruction(0x40_0000, 0),
                 RetiredInstruction(0x40_0040, 1)],
        accesses=[FetchAccess(0x40_0000 >> 6, 0x40_0000, 0, False),
                  FetchAccess((0x40_0000 >> 6) + 9, 0x40_0240, 0, True)],
        instructions=17,
    )


class TestRoundtrip:
    def test_fields_survive(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "trace")
        loaded = load_bundle(path)
        original = small_bundle()
        assert loaded.workload == original.workload
        assert loaded.core == original.core
        assert loaded.seed == original.seed
        assert loaded.instructions == original.instructions
        assert loaded.retires == original.retires
        assert loaded.accesses == original.accesses

    def test_extension_appended(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "trace.bin")
        assert path.suffix == ".npz"

    def test_empty_streams(self, tmp_path):
        bundle = TraceBundle(workload="empty", core=0, seed=0)
        loaded = load_bundle(save_bundle(bundle, tmp_path / "e"))
        assert loaded.retires == []
        assert loaded.accesses == []

    def test_generated_trace_roundtrip(self, tmp_path, dss_trace):
        bundle = dss_trace.bundle
        loaded = load_bundle(save_bundle(bundle, tmp_path / "dss"))
        assert loaded.retires == bundle.retires
        assert loaded.accesses == bundle.accesses
        loaded.validate()

    def test_extra_metadata_roundtrip(self, tmp_path):
        extra = {"frontend_stats": {"conditional_branches": 7},
                 "note": "unit"}
        path = save_bundle(small_bundle(), tmp_path / "x", extra=extra)
        _, loaded_extra = load_bundle_extra(path)
        assert loaded_extra == extra

    def test_atomic_save_equivalent(self, tmp_path):
        plain = load_bundle(save_bundle(small_bundle(), tmp_path / "p"))
        atomic = load_bundle(save_bundle_atomic(small_bundle(),
                                                tmp_path / "a"))
        assert plain.retires == atomic.retires
        assert plain.accesses == atomic.accesses
        # Staging leaves no scratch behind, and nothing it ever writes
        # can be mistaken for an archive by a directory-level scan.
        assert not list((tmp_path / ".tmp").glob("*"))
        assert sorted(p.name for p in tmp_path.glob("*.npz")) == \
            ["a.npz", "p.npz"]


class TestFormatV3:
    def test_v3_members_are_stored_flat(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "flat")
        with zipfile.ZipFile(path) as archive:
            for info in archive.infolist():
                assert info.compress_type == zipfile.ZIP_STORED

    def test_v3_loads_as_readonly_memmap(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "m")
        loaded = load_bundle(path, mmap=True)
        # from_columns wraps the memmap in a zero-copy base-class view:
        # the backing object is the map, and the data stays read-only.
        assert isinstance(loaded.access_block.base, np.memmap)
        assert not loaded.access_block.flags.writeable
        with pytest.raises(ValueError):
            loaded.access_block[0] = 1
        assert loaded.retires == small_bundle().retires
        assert loaded.accesses == small_bundle().accesses

    def test_mmap_off_loads_plain_arrays(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "p")
        loaded = load_bundle(path, mmap=False)
        assert not isinstance(loaded.access_block.base, np.memmap)
        assert loaded.accesses == small_bundle().accesses

    def test_mmap_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_MMAP", raising=False)
        assert mmap_enabled()
        monkeypatch.setenv("REPRO_TRACE_MMAP", "off")
        assert not mmap_enabled()
        monkeypatch.setenv("REPRO_TRACE_MMAP", "1")
        assert mmap_enabled()

    def test_empty_columns_mmap(self, tmp_path):
        bundle = TraceBundle(workload="empty", core=0, seed=0)
        loaded = load_bundle(save_bundle(bundle, tmp_path / "e"), mmap=True)
        assert loaded.retires == [] and loaded.accesses == []

    def test_v2_write_and_read_compat(self, tmp_path):
        """The compressed PR 2 layout stays fully readable (and never
        maps), and the compat writer really emits version 2."""
        path = save_bundle(small_bundle(), tmp_path / "v2",
                           extra={"note": "old"}, format_version=2)
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
        assert meta["version"] == 2
        with zipfile.ZipFile(path) as archive:
            kinds = {info.compress_type for info in archive.infolist()}
        assert zipfile.ZIP_DEFLATED in kinds
        bundle, extra = load_bundle_extra(path, mmap=True)
        assert not isinstance(bundle.access_block, np.memmap)
        assert bundle.retires == small_bundle().retires
        assert bundle.accesses == small_bundle().accesses
        assert extra == {"note": "old"}

    def test_unknown_write_version_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_bundle(small_bundle(), tmp_path / "x", format_version=1)

    def test_v3_truncated_member_rejected(self, tmp_path):
        """A v3 archive whose column payload is cut short (but whose
        central directory was rebuilt) must be rejected, not mapped."""
        path = save_bundle(small_bundle(), tmp_path / "t")
        with zipfile.ZipFile(path) as archive:
            members = {info.filename: archive.read(info.filename)
                       for info in archive.infolist()}
        clipped = tmp_path / "clipped.npz"
        with zipfile.ZipFile(clipped, "w", zipfile.ZIP_STORED) as archive:
            for name, payload in members.items():
                if name == "access_block.npy":
                    payload = payload[:len(payload) - 4]
                archive.writestr(name, payload)
        with pytest.raises(TraceFormatError):
            load_bundle(clipped, mmap=True)

    def test_v3_meta_claiming_compressed_members_rejected(self, tmp_path):
        """Version-3 metadata over deflated members cannot be mapped
        and must fail loudly as a format error."""
        path = save_bundle(small_bundle(), tmp_path / "c")
        with zipfile.ZipFile(path) as archive:
            members = {info.filename: archive.read(info.filename)
                       for info in archive.infolist()}
        rezipped = tmp_path / "rezipped.npz"
        with zipfile.ZipFile(rezipped, "w",
                             zipfile.ZIP_DEFLATED) as archive:
            for name, payload in members.items():
                archive.writestr(name, payload)
        with pytest.raises(TraceFormatError):
            load_bundle(rezipped, mmap=True)
        # With mapping off the same file is perfectly readable.
        assert load_bundle(rezipped, mmap=False).retires == \
            small_bundle().retires


def _rewrite_meta(path, mutate):
    """Load an archive, apply ``mutate`` to its metadata, re-save."""
    with np.load(path) as archive:
        payload = {name: archive[name] for name in archive.files}
    meta = json.loads(bytes(payload["meta"]).decode())
    mutate(meta)
    payload["meta"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **payload)


class TestErrorPaths:
    def test_version_mismatch_rejected(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "v")
        _rewrite_meta(path, lambda meta: meta.update(version=999))
        with pytest.raises(TraceFormatError):
            load_bundle(path)

    def test_missing_meta_field_rejected(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "m")
        _rewrite_meta(path, lambda meta: meta.pop("workload"))
        with pytest.raises(TraceFormatError):
            load_bundle(path)

    def test_missing_array_rejected(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "a")
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        del payload["access_block"]
        np.savez_compressed(path, **payload)
        with pytest.raises(TraceFormatError):
            load_bundle(path)

    def test_column_length_disagreement_rejected(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "l")
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["retire_tl"] = payload["retire_tl"][:-1]
        np.savez_compressed(path, **payload)
        with pytest.raises(TraceFormatError):
            load_bundle(path)

    def test_truncated_archive_rejected(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "t")
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(TraceFormatError):
            load_bundle(path)

    def test_corrupt_bytes_rejected(self, tmp_path):
        path = tmp_path / "c.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(TraceFormatError):
            load_bundle(path)

    def test_undecodable_meta_rejected(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "j")
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["meta"] = np.frombuffer(b"{not json", dtype=np.uint8)
        np.savez_compressed(path, **payload)
        with pytest.raises(TraceFormatError):
            load_bundle(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "absent.npz")

    def test_format_error_is_value_error(self):
        assert issubclass(TraceFormatError, ValueError)


_pcs = st.integers(min_value=0, max_value=2 ** 48 - 1)
_levels = st.integers(min_value=0, max_value=3)


@st.composite
def bundles(draw):
    """Arbitrary (not necessarily invariant-satisfying) bundles."""
    retires = draw(st.lists(
        st.builds(RetiredInstruction, pc=_pcs, trap_level=_levels),
        max_size=30))
    accesses = draw(st.lists(
        st.builds(FetchAccess, block=_pcs, pc=_pcs, trap_level=_levels,
                  wrong_path=st.booleans()),
        max_size=30))
    return TraceBundle(
        workload=draw(st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=12)),
        core=draw(st.integers(min_value=0, max_value=15)),
        seed=draw(st.integers(min_value=0, max_value=2 ** 31)),
        retires=retires,
        accesses=accesses,
        instructions=draw(st.integers(min_value=0, max_value=2 ** 40)),
    )


class TestRoundtripProperty:
    @settings(max_examples=60, deadline=None)
    @given(bundle=bundles())
    def test_any_bundle_roundtrips(self, bundle, tmp_path_factory):
        path = tmp_path_factory.mktemp("prop") / "bundle"
        loaded = load_bundle(save_bundle(bundle, path))
        assert loaded.workload == bundle.workload
        assert loaded.core == bundle.core
        assert loaded.seed == bundle.seed
        assert loaded.block_bytes == bundle.block_bytes
        assert loaded.instructions == bundle.instructions
        assert loaded.retires == bundle.retires
        assert loaded.accesses == bundle.accesses
        assert np.array_equal(loaded.retire_pc, bundle.retire_pc)
        assert np.array_equal(loaded.access_wrong_path,
                              bundle.access_wrong_path)
