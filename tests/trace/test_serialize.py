"""On-disk trace format roundtrips."""

import pytest

from repro.trace.bundle import TraceBundle
from repro.trace.records import FetchAccess, RetiredInstruction
from repro.trace.serialize import load_bundle, save_bundle


def small_bundle():
    return TraceBundle(
        workload="roundtrip",
        core=3,
        seed=99,
        retires=[RetiredInstruction(0x40_0000, 0),
                 RetiredInstruction(0x40_0040, 1)],
        accesses=[FetchAccess(0x40_0000 >> 6, 0x40_0000, 0, False),
                  FetchAccess((0x40_0000 >> 6) + 9, 0x40_0240, 0, True)],
        instructions=17,
    )


class TestRoundtrip:
    def test_fields_survive(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "trace")
        loaded = load_bundle(path)
        original = small_bundle()
        assert loaded.workload == original.workload
        assert loaded.core == original.core
        assert loaded.seed == original.seed
        assert loaded.instructions == original.instructions
        assert loaded.retires == original.retires
        assert loaded.accesses == original.accesses

    def test_extension_appended(self, tmp_path):
        path = save_bundle(small_bundle(), tmp_path / "trace.bin")
        assert path.suffix == ".npz"

    def test_empty_streams(self, tmp_path):
        bundle = TraceBundle(workload="empty", core=0, seed=0)
        loaded = load_bundle(save_bundle(bundle, tmp_path / "e"))
        assert loaded.retires == []
        assert loaded.accesses == []

    def test_generated_trace_roundtrip(self, tmp_path, dss_trace):
        bundle = dss_trace.bundle
        loaded = load_bundle(save_bundle(bundle, tmp_path / "dss"))
        assert loaded.retires == bundle.retires
        assert loaded.accesses == bundle.accesses
        loaded.validate()

    def test_version_check(self, tmp_path):
        import json

        import numpy as np

        path = save_bundle(small_bundle(), tmp_path / "v")
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(payload["meta"]).decode())
        meta["version"] = 999
        payload["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError):
            load_bundle(path)
