"""Trace bundle invariants and derived views."""

import pytest

from repro.trace.bundle import TraceBundle, merge_statistics
from repro.trace.records import FetchAccess, RetiredInstruction


def make_bundle():
    return TraceBundle(
        workload="unit",
        core=0,
        seed=1,
        retires=[
            RetiredInstruction(0, 0),
            RetiredInstruction(64, 0),
            RetiredInstruction(256, 1),
            RetiredInstruction(68, 0),
        ],
        accesses=[
            FetchAccess(0, 0, 0, False),
            FetchAccess(1, 64, 0, False),
            FetchAccess(7, 448, 0, True),
            FetchAccess(4, 256, 1, False),
            FetchAccess(1, 68, 0, False),
        ],
        instructions=40,
    )


class TestBundleViews:
    def test_retire_blocks(self):
        assert make_bundle().retire_blocks() == [0, 1, 4, 1]

    def test_correct_path_accesses(self):
        assert len(make_bundle().correct_path_accesses()) == 4

    def test_application_retires(self):
        assert len(make_bundle().application_retires()) == 3

    def test_wrong_path_fraction(self):
        assert make_bundle().wrong_path_fraction() == pytest.approx(0.2)

    def test_footprint_blocks(self):
        assert make_bundle().footprint_blocks() == 3

    def test_split_by_trap_level(self):
        groups = make_bundle().split_by_trap_level()
        assert set(groups) == {0, 1}
        assert len(groups[0]) == 3


class TestValidation:
    def test_valid_bundle_passes(self):
        make_bundle().validate()

    def test_instruction_undercount_rejected(self):
        bundle = make_bundle()
        bundle.instructions = 1
        with pytest.raises(ValueError):
            bundle.validate()

    def test_uncollapsed_retires_rejected(self):
        source = make_bundle()
        bundle = TraceBundle(
            workload=source.workload, core=0, seed=1,
            retires=source.retires + [RetiredInstruction(72, 0),
                                      RetiredInstruction(76, 0)],
            accesses=source.accesses, instructions=source.instructions)
        with pytest.raises(ValueError):
            bundle.validate()

    def test_negative_pc_rejected(self):
        bundle = TraceBundle(
            workload="unit", core=0, seed=1,
            retires=[RetiredInstruction(-64, 0)],
            accesses=[], instructions=4)
        with pytest.raises(ValueError):
            bundle.validate()

    def test_access_block_pc_mismatch_rejected(self):
        source = make_bundle()
        bundle = TraceBundle(
            workload=source.workload, core=0, seed=1,
            retires=source.retires,
            accesses=source.accesses + [FetchAccess(2, 64, 0, False)],
            instructions=source.instructions)
        with pytest.raises(ValueError):
            bundle.validate()

    def test_views_are_snapshots(self):
        """Mutating a materialized object view does not write back into
        the columns (the columnar arrays are authoritative)."""
        bundle = make_bundle()
        bundle.retires.append(RetiredInstruction(72, 0))
        assert len(bundle.retire_pc) == 4
        bundle.validate()


class TestMergeStatistics:
    def test_aggregates(self):
        stats = merge_statistics([make_bundle(), make_bundle()])
        assert stats["instructions"] == 80.0
        assert stats["union_footprint_blocks"] == 3.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_statistics([])


class TestGeneratedBundles:
    def test_generated_trace_validates(self, oltp_trace):
        oltp_trace.bundle.validate()

    def test_alignment_invariant(self, oltp_trace):
        bundle = oltp_trace.bundle
        correct = bundle.correct_path_accesses()
        assert len(correct) == len(bundle.retires)
        for access, retire in zip(correct, bundle.retires):
            assert access.pc == retire.pc
            assert access.trap_level == retire.trap_level

    def test_contains_interrupt_records(self, oltp_trace):
        levels = {r.trap_level for r in oltp_trace.bundle.retires}
        assert levels == {0, 1}
