"""Stream statistics."""

import pytest

from repro.trace.stats import (
    analyze_block_stream,
    repetition_score,
    reuse_distance_histogram,
    run_length_distribution,
    stream_overlap,
    summarize_streams,
)


class TestAnalyzeBlockStream:
    def test_empty(self):
        stats = analyze_block_stream([])
        assert stats.length == 0
        assert stats.unique_blocks == 0

    def test_fully_sequential(self):
        stats = analyze_block_stream(list(range(10)))
        assert stats.sequential_fraction == 1.0
        assert stats.discontinuities == 0

    def test_fully_discontinuous(self):
        stats = analyze_block_stream([0, 10, 3, 99])
        assert stats.sequential_fraction == 0.0
        assert stats.discontinuities == 3

    def test_reuse_mean(self):
        stats = analyze_block_stream([1, 2, 1, 2])
        assert stats.reuse_mean == pytest.approx(2.0)

    def test_describe_keys(self):
        description = analyze_block_stream([1, 2]).describe()
        assert set(description) == {
            "length", "unique_blocks", "sequential_fraction",
            "discontinuities", "reuse_mean"}


class TestReuseDistance:
    def test_first_touch_bin(self):
        histogram = reuse_distance_histogram([1, 2, 3])
        assert histogram[-1] == 3

    def test_distance_binning(self):
        histogram = reuse_distance_histogram([5, 5])
        assert histogram[0] == 1  # distance 1 -> bin 0

    def test_long_distance(self):
        stream = [7] + list(range(100, 100 + 16)) + [7]
        histogram = reuse_distance_histogram(stream)
        assert histogram[4] == 1  # distance 17 -> bin 4


class TestRunLengths:
    def test_single_run(self):
        assert run_length_distribution([3, 4, 5]) == {3: 1}

    def test_mixed_runs(self):
        distribution = run_length_distribution([0, 1, 9, 10, 11, 50])
        assert distribution[2] == 1
        assert distribution[3] == 1
        assert distribution[1] == 1

    def test_empty(self):
        assert run_length_distribution([]) == {}


class TestOverlapAndRepetition:
    def test_overlap_identical(self):
        assert stream_overlap([1, 2], [2, 1]) == 1.0

    def test_overlap_disjoint(self):
        assert stream_overlap([1], [2]) == 0.0

    def test_overlap_empty(self):
        assert stream_overlap([], []) == 1.0

    def test_repetition_of_loop(self):
        stream = [1, 2, 3, 4] * 32
        assert repetition_score(stream) > 0.9

    def test_repetition_of_unique(self):
        assert repetition_score(list(range(64))) == 0.0

    def test_repetition_short_stream(self):
        assert repetition_score([1, 2]) == 0.0

    def test_summarize(self):
        summary = summarize_streams({"a": [1, 2], "b": []})
        assert summary["a"].length == 2
        assert summary["b"].length == 0


class TestRealStreamProperties:
    def test_retire_stream_is_loopier_than_random(self, oltp_trace):
        blocks = oltp_trace.bundle.retire_blocks()
        assert repetition_score(blocks[:20000]) > 0.3

    def test_server_streams_have_discontinuities(self, web_trace):
        stats = analyze_block_stream(web_trace.bundle.retire_blocks())
        assert 0.0 < stats.sequential_fraction < 0.9
