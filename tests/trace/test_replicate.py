"""Trace replication: verified chunked fetch, resume, fallback, export."""

import contextlib
import threading

import pytest

from repro.dist.http import build_coordinator_server
from repro.trace.bundle import TraceBundle
from repro.trace.records import FetchAccess, RetiredInstruction
from repro.trace.replicate import (DEFAULT_CHUNK_BYTES, ReplicationError,
                                   TraceExport, TraceFetcher,
                                   active_fetcher, chunk_bytes_from_env,
                                   installed)
from repro.trace.serialize import archive_sha256
from repro.trace.store import PARTIAL_DIR, TraceKey, TraceStore

KEY = TraceKey(workload="unit-wl", instructions=1000, seed=7, core=0)


def bundle_for(key: TraceKey) -> TraceBundle:
    return TraceBundle(
        workload=key.workload, core=key.core, seed=key.seed,
        retires=[RetiredInstruction(0x40_0000, 0)],
        accesses=[FetchAccess(0x40_0000 >> 6, 0x40_0000, 0, False)],
        instructions=key.instructions,
    )


@contextlib.contextmanager
def serving(export):
    """A live coordinator serving only the trace routes (no board —
    the lease routes are never exercised here)."""
    server = build_coordinator_server("127.0.0.1", 0, None, export)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()


def warm_store(tmp_path, key=KEY):
    store = TraceStore(tmp_path / "coordinator")
    path = store.put(key, bundle_for(key))
    return store, path


def make_fetcher(url, **kwargs):
    kwargs.setdefault("worker_id", "t0")
    kwargs.setdefault("chunk_bytes", 512)
    kwargs.setdefault("sleep", lambda seconds: None)
    return TraceFetcher(url, **kwargs)


class TestTraceExport:
    def test_listing_advertises_store_entries_with_transfer_hashes(
            self, tmp_path):
        store, path = warm_store(tmp_path)
        stray = store.root / "user-saved-trace.npz"
        stray.write_bytes(b"not a store entry")
        ads = TraceExport(store.root).listing()
        assert [ad["key"] for ad in ads] == [path.name]
        assert ads[0]["size"] == path.stat().st_size
        assert ads[0]["sha256"] == archive_sha256(path)

    def test_open_entry_resolves_only_advertised_names(self, tmp_path):
        store, path = warm_store(tmp_path)
        export = TraceExport(store.root)
        resolved = export.open_entry(path.name)
        assert resolved is not None
        got_path, size, sha256 = resolved
        assert got_path == path and size == path.stat().st_size
        assert sha256 == archive_sha256(path)
        assert export.open_entry("user-saved-trace.npz") is None
        assert export.open_entry("missing__i1__s1__c1__g" + "0" * 12
                                 + ".npz") is None

    def test_rewritten_archive_rehashes(self, tmp_path):
        store, path = warm_store(tmp_path)
        export = TraceExport(store.root)
        first = export.open_entry(path.name)[2]
        other = KEY._replace(seed=8)
        rewritten = TraceStore(store.root).put(other, bundle_for(other))
        rewritten.replace(path)
        second = export.open_entry(path.name)[2]
        assert second == archive_sha256(path)
        assert second != first


class TestFetcher:
    def test_cold_store_fetch_is_byte_identical(self, tmp_path):
        store, path = warm_store(tmp_path)
        replica = TraceStore(tmp_path / "replica")
        with serving(TraceExport(store.root)) as url:
            fetcher = make_fetcher(url, chunk_bytes=256)
            assert replica.get(KEY) is None
            assert fetcher.fetch(KEY, replica) is True
        assert fetcher.fetched == 1
        copied = replica.root / path.name
        assert copied.read_bytes() == path.read_bytes()
        # The admitted copy loads back through the normal store path
        # (identity metadata and all).
        assert replica.get(KEY) is not None
        assert list((replica.root / PARTIAL_DIR).glob("*.part")) == []

    def test_resumes_from_a_partial_file(self, tmp_path):
        store, path = warm_store(tmp_path)
        replica = TraceStore(tmp_path / "replica")
        staging = replica.root / PARTIAL_DIR
        staging.mkdir(parents=True)
        prefix = path.read_bytes()[:100]
        (staging / f"{path.name}.part").write_bytes(prefix)
        with serving(TraceExport(store.root)) as url:
            fetcher = make_fetcher(url, chunk_bytes=256)
            starts = []
            original = fetcher._get_range

            def spying(name, start, end):
                starts.append(start)
                return original(name, start, end)

            fetcher._get_range = spying
            assert fetcher.fetch(KEY, replica) is True
        assert starts[0] == len(prefix)
        assert (replica.root / path.name).read_bytes() == path.read_bytes()

    def test_poisoned_partial_restarts_clean(self, tmp_path):
        """A full-length garbage partial resumes to a hash mismatch;
        the fetcher deletes it and the next attempt lands verified
        bytes — corruption never reaches the store."""
        store, path = warm_store(tmp_path)
        replica = TraceStore(tmp_path / "replica")
        staging = replica.root / PARTIAL_DIR
        staging.mkdir(parents=True)
        part = staging / f"{path.name}.part"
        part.write_bytes(b"\0" * path.stat().st_size)
        sleeps = []
        with serving(TraceExport(store.root)) as url:
            fetcher = make_fetcher(url, sleep=sleeps.append)
            assert fetcher.fetch(KEY, replica) is True
        assert len(sleeps) == 1   # one retry after the mismatch
        assert (replica.root / path.name).read_bytes() == path.read_bytes()

    def test_missing_archive_falls_back_to_generation(self, tmp_path):
        store, _ = warm_store(tmp_path)
        replica = TraceStore(tmp_path / "replica")
        absent = KEY._replace(seed=99)
        with serving(TraceExport(store.root)) as url:
            assert make_fetcher(url).fetch(absent, replica) is False
            with pytest.raises(ReplicationError, match="forbidden"):
                make_fetcher(url, require_fetch=True).fetch(absent,
                                                            replica)

    def test_dead_link_exhausts_retries_with_replication_error(
            self, tmp_path):
        replica = TraceStore(tmp_path / "replica")
        fetcher = make_fetcher("http://127.0.0.1:9", max_attempts=2,
                               timeout=0.5)
        with pytest.raises(ReplicationError, match="after 2 attempts"):
            fetcher.fetch(KEY, replica)

    def test_budget_gc_never_evicts_the_fresh_admission(self, tmp_path):
        store, path = warm_store(tmp_path)
        replica = TraceStore(tmp_path / "replica")
        with serving(TraceExport(store.root)) as url:
            fetcher = make_fetcher(url, budget_bytes=1)
            assert fetcher.fetch(KEY, replica) is True
        # The 1-byte budget would evict anything not freshly admitted;
        # the grace window keeps the archive the task is about to use.
        assert (replica.root / path.name).exists()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TraceFetcher("http://x", chunk_bytes=0)
        with pytest.raises(ValueError):
            TraceFetcher("http://x", max_attempts=0)


class TestHook:
    def test_installed_scopes_the_active_fetcher(self):
        assert active_fetcher() is None
        fetcher = TraceFetcher("http://x")
        with installed(fetcher):
            assert active_fetcher() is fetcher
            with installed(None):
                assert active_fetcher() is None
            assert active_fetcher() is fetcher
        assert active_fetcher() is None


class TestChunkEnv:
    def test_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_FETCH_CHUNK", raising=False)
        assert chunk_bytes_from_env() == DEFAULT_CHUNK_BYTES
        monkeypatch.setenv("REPRO_FETCH_CHUNK", "4096")
        assert chunk_bytes_from_env() == 4096

    @pytest.mark.parametrize("raw", ["zero", "-5", "0"])
    def test_invalid_values_fall_back(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_FETCH_CHUNK", raw)
        assert chunk_bytes_from_env() == DEFAULT_CHUNK_BYTES
