"""LeaseBoard state-machine locks, plus one live loopback HTTP pass.

The board is exercised directly (no sockets, no subprocesses): grant
order, heartbeat renewal, stale-report acks, duplicate-completion
dedup, retry → quarantine progression, dead-worker expiry, and the
never-wedge backstop.  One test then drives the same transitions over
a real :class:`CoordinatorServer` socket to pin the HTTP mapping
(200/400/404/405-ish shapes) without involving worker subprocesses.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.dist.coordinator import LeaseBoard, run_distributed_sweep
from repro.dist.http import build_coordinator_server
from repro.dist.protocol import (Heartbeat, TaskFailed, TaskResult,
                                 decode_document, encode)
from repro.experiments.parallel import WORKER_DIED
from repro.scenarios import ResultsStore, parse_spec
from repro.scenarios.runner import _run_group, prepare_sweep

SMALL = {
    "name": "board",
    "sweep": {
        "workloads": ["dss-qry2"], "instructions": 30_000, "seeds": 3,
        "cores": 2, "cache": {"kb": 16},
        "engines": ["next-line",
                    {"name": "pif", "params": {"sab_count": 4,
                                               "sab_window_regions": 3}}],
    },
}


def make_board(tmp_path, **kwargs):
    plan = prepare_sweep(parse_spec(SMALL), tmp_path / "out", jobs=2,
                         attach_baselines=True)
    kwargs.setdefault("lease_timeout", 60.0)
    return LeaseBoard(plan, **kwargs), plan


def grant(board, worker):
    payload = board.request_lease(worker)
    assert payload["state"] == "granted"
    return decode_document(payload["lease"])


class TestLeasing:
    def test_grants_drain_then_idle_then_drained(self, tmp_path):
        board, plan = make_board(tmp_path)
        leases = [grant(board, f"w{n}") for n in range(len(plan.tasks))]
        assert len({lease.lease for lease in leases}) == len(plan.tasks)
        assert board.request_lease("w9")["state"] == "idle"
        for lease in leases:
            records, baselines = _run_group(lease.task)
            ack = board.submit(TaskResult(
                lease=lease.lease, worker="w0",
                records=tuple(records), baselines=baselines))
            assert ack["status"] == "ok"
        assert board.done()
        assert board.request_lease("w9")["state"] == "drained"
        computed, failed, quarantined = board.counts()
        assert (computed, failed, quarantined) == (4, 0, ())

    def test_stale_report_is_acked_stale_and_dropped(self, tmp_path):
        board, _ = make_board(tmp_path)
        ack = board.submit(TaskFailed(lease="lease-999999", worker="w0",
                                      kind="error", error="X: boom"))
        assert ack == {"status": "stale", "lease": "lease-999999"}
        assert board.counts() == (0, 0, ())

    def test_duplicate_completion_is_stale_not_double_counted(
            self, tmp_path):
        board, _ = make_board(tmp_path)
        lease = grant(board, "w0")
        records, baselines = _run_group(lease.task)
        report = TaskResult(lease=lease.lease, worker="w0",
                            records=tuple(records), baselines=baselines)
        assert board.submit(report)["status"] == "ok"
        assert board.submit(report)["status"] == "stale"
        assert board.counts()[0] == len(records)

    def test_heartbeat_renews_only_the_holders_lease(self, tmp_path):
        board, _ = make_board(tmp_path, lease_timeout=0.01)
        lease = grant(board, "w0")
        beat = Heartbeat(lease=lease.lease, worker="w0", beat=1)
        assert board.heartbeat(beat)["status"] == "ok"
        thief = Heartbeat(lease=lease.lease, worker="w1", beat=1)
        assert board.heartbeat(thief)["status"] == "stale"
        assert board.heartbeat(Heartbeat(
            lease="lease-999999", worker="w0", beat=1))["status"] == "stale"


class TestFailurePaths:
    def test_failed_report_requeues_with_bumped_attempt(self, tmp_path):
        board, _ = make_board(tmp_path, max_retries=2)
        lease = grant(board, "w0")
        first_attempt = lease.task.attempt
        board.submit(TaskFailed(lease=lease.lease, worker="w0",
                                kind="error", error="X: boom"))
        # The retried task is requeued at the tail; drain grants until
        # the same lane set comes around with a bumped attempt.
        retried = grant(board, "w1")
        while retried.task.lanes != lease.task.lanes:
            retried = grant(board, "w1")
        assert retried.task.attempt == first_attempt + 1

    def test_retries_exhausted_quarantines_with_failed_records(
            self, tmp_path):
        board, plan = make_board(tmp_path, max_retries=1)
        name = None
        for _ in range(2 * len(plan.tasks)):
            payload = board.request_lease("w0")
            if payload["state"] != "granted":
                break
            lease = decode_document(payload["lease"])
            name = name or lease.task.group_name()
            board.submit(TaskFailed(lease=lease.lease, worker="w0",
                                    kind="error", error="X: poison"))
        assert board.done()
        computed, failed, quarantined = board.counts()
        assert computed == 0 and failed == 4
        records = ResultsStore(tmp_path / "out").load_current()
        assert len(records) == 4
        for record in records.values():
            assert record["failed"]["attempts"] == 2
            assert record["failed"]["kind"] == "error"

    def test_expire_worker_requeues_as_worker_died(self, tmp_path):
        board, _ = make_board(tmp_path, max_retries=0)
        lease = grant(board, "w0")
        assert board.expire_worker("w0") == 1
        assert board.expire_worker("w0") == 0
        records = ResultsStore(tmp_path / "out").load_current()
        failed = [record for record in records.values()
                  if "failed" in record]
        assert failed and all(
            record["failed"]["error"] == WORKER_DIED for record in failed)

    def test_expire_stale_reaps_past_deadline_leases(self, tmp_path):
        board, _ = make_board(tmp_path, max_retries=2,
                              lease_timeout=0.0001)
        lease = grant(board, "w0")
        time.sleep(0.01)
        assert board.expire_stale() >= 1
        # The requeued task comes back (at the queue tail) with a
        # bumped attempt.
        regrant = grant(board, "w1")
        while regrant.task.lanes != lease.task.lanes:
            regrant = grant(board, "w1")
        assert regrant.task.attempt >= 1
        # The dead worker's late report is stale, not double-merged.
        assert board.submit(TaskFailed(
            lease=lease.lease, worker="w0", kind="error",
            error="X: late"))["status"] == "stale"

    def test_fail_outstanding_never_wedges(self, tmp_path):
        board, plan = make_board(tmp_path)
        grant(board, "w0")  # one leased, rest pending
        drained = board.fail_outstanding()
        assert drained == len(plan.tasks)
        assert board.done()
        assert board.counts()[1] == 4


class TestValidation:
    def test_run_distributed_sweep_rejects_bad_arguments(self, tmp_path):
        spec = parse_spec(SMALL)
        out = tmp_path / "out"
        with pytest.raises(ValueError, match="transport"):
            run_distributed_sweep(spec, out, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="workers"):
            run_distributed_sweep(spec, out, workers=0)
        with pytest.raises(ValueError, match="limit"):
            run_distributed_sweep(spec, out, limit=-1)
        with pytest.raises(ValueError, match="max_retries"):
            run_distributed_sweep(spec, out, max_retries=-1)
        with pytest.raises(ValueError, match="lease_timeout"):
            run_distributed_sweep(spec, out, lease_timeout=0.0)

    def test_nothing_to_do_returns_without_binding(self, tmp_path):
        from repro.scenarios import run_sweep

        spec = parse_spec(SMALL)
        out = tmp_path / "out"
        run_sweep(spec, out, log=lambda line: None)
        summary = run_distributed_sweep(spec, out, log=lambda line: None)
        assert summary.complete() and summary.computed == 0
        assert summary.skipped == 4


class TestLoopbackHTTP:
    def _post(self, url, path, body):
        request = urllib.request.Request(
            url + path, data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())

    def test_wire_transitions_over_a_real_socket(self, tmp_path):
        board, plan = make_board(tmp_path)
        server = build_coordinator_server("127.0.0.1", 0, board)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            status, payload = self._post(
                url, "/v1/dist/lease", json.dumps({"worker": "t0"}).encode())
            assert status == 200 and payload["state"] == "granted"
            lease = decode_document(payload["lease"])

            status, ack = self._post(url, "/v1/dist/heartbeat", encode(
                Heartbeat(lease=lease.lease, worker="t0", beat=1)))
            assert status == 200 and ack["status"] == "ok"

            records, baselines = _run_group(lease.task)
            status, ack = self._post(url, "/v1/dist/records", encode(
                TaskResult(lease=lease.lease, worker="t0",
                           records=tuple(records), baselines=baselines)))
            assert status == 200 and ack["status"] == "ok"

            # Malformed frames are a typed 400, not a stack trace.
            with pytest.raises(urllib.error.HTTPError) as error:
                self._post(url, "/v1/dist/records", b"{nope")
            assert error.value.code == 400
            assert "malformed frame" in json.loads(
                error.value.read())["error"]

            # A heartbeat frame on the records route is refused.
            with pytest.raises(urllib.error.HTTPError) as error:
                self._post(url, "/v1/dist/records", encode(
                    Heartbeat(lease=lease.lease, worker="t0", beat=2)))
            assert error.value.code == 400

            # A bad lease-request body is refused.
            with pytest.raises(urllib.error.HTTPError) as error:
                self._post(url, "/v1/dist/lease",
                           json.dumps({"who": "t0"}).encode())
            assert error.value.code == 400

            # Daemon routes are not served by the coordinator.
            with pytest.raises(urllib.error.HTTPError) as error:
                self._post(url, "/v1/sweeps", b"{}")
            assert error.value.code == 404
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()
