"""Trace routes over the wire + cold-store replication end to end.

Three layers:

* the coordinator's ``GET /v1/dist/traces[/{key}]`` routes against a
  live socket — schema-valid listings, ranged 206 chunks carrying the
  advertisement headers, 404s for unknown names and disabled stores;
* the worker's generator-mismatch policy in isolation (exit 2 with
  fetching off; override + fetch with it on);
* the full tier: a ``--transport local`` sweep whose workers start on
  an *empty* replica store — including the headline authoritative-
  coordinator case where the advertised generator differs from the
  workers' local sources — must converge to results byte-identical to
  an inline run's.
"""

import contextlib
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.dist.coordinator import LeaseBoard, run_distributed_sweep
from repro.dist.http import build_coordinator_server
from repro.dist.protocol import ProtocolError, trace_ad_from_wire
from repro.dist.worker import run_worker
from repro.pipeline.tracegen import cached_trace
from repro.scenarios import parse_spec, run_sweep, verify_store
from repro.scenarios.runner import prepare_sweep
from repro.service.schemas import validate_payload
from repro.trace.replicate import SHA_HEADER, SIZE_HEADER, TraceExport
from repro.trace.serialize import archive_sha256
from repro.trace.store import TraceStore, set_generator_override

SMALL = {
    "name": "replication",
    "sweep": {
        "workloads": ["dss-qry2"], "instructions": 30_000, "seeds": 3,
        "cores": 2, "cache": {"kb": 16},
        "engines": ["next-line",
                    {"name": "pif", "params": {"sab_count": 4,
                                               "sab_window_regions": 3}}],
    },
}

quiet = {"log": lambda line: None}

FAKE_GENERATOR = "f" * 12


def spec():
    return parse_spec(SMALL)


@contextlib.contextmanager
def serving(board=None, export=None):
    server = build_coordinator_server("127.0.0.1", 0, board, export)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()


def get(url, path, headers=None):
    request = urllib.request.Request(url + path, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read(), dict(response.headers)


@pytest.fixture()
def warm_store():
    """The session trace store, warmed with this spec's archives."""
    store = TraceStore.from_env()
    assert store is not None, "conftest always provides a session store"
    for core in (0, 1):
        cached_trace("dss-qry2", 30_000, 3, core)
    return store


class TestTraceRoutes:
    def test_listing_is_schema_valid_and_strict_on_the_wire(
            self, warm_store):
        with serving(export=TraceExport(warm_store.root)) as url:
            status, body, _ = get(url, "/v1/dist/traces")
        assert status == 200
        payload = json.loads(body)
        validate_payload("traces", payload)
        assert payload["count"] >= 2
        names = set()
        for entry in payload["traces"]:
            ad = trace_ad_from_wire(entry)
            assert ad.size > 0
            names.add(ad.key)
        assert any(name.startswith("dss-qry2__i30000__s3__c0__")
                   for name in names)

    def test_ranged_fetch_carries_advertisement_and_reassembles(
            self, warm_store):
        export = TraceExport(warm_store.root)
        ad = export.listing()[0]
        path = warm_store.root / ad["key"]
        with serving(export=export) as url:
            status, whole, headers = get(url, f"/v1/dist/traces/{ad['key']}")
            assert status == 200
            assert whole == path.read_bytes()
            assert headers[SHA_HEADER] == ad["sha256"]
            assert int(headers[SIZE_HEADER]) == ad["size"]
            pieces, offset = [], 0
            while offset < ad["size"]:
                end = offset + 1023
                status, chunk, headers = get(
                    url, f"/v1/dist/traces/{ad['key']}",
                    headers={"Range": f"bytes={offset}-{end}"})
                assert status == 206
                assert headers[SHA_HEADER] == ad["sha256"]
                pieces.append(chunk)
                offset += len(chunk)
        assert b"".join(pieces) == whole

    def test_unknown_archive_and_disabled_store_are_404(self, warm_store):
        with serving(export=TraceExport(warm_store.root)) as url:
            with pytest.raises(urllib.error.HTTPError) as error:
                get(url, "/v1/dist/traces/nope__i1__s1__c0__g"
                         + "0" * 12 + ".npz")
            assert error.value.code == 404
        with serving(export=None) as url:
            for path in ("/v1/dist/traces",
                         "/v1/dist/traces/x__i1__s1__c0__g0.npz"):
                with pytest.raises(urllib.error.HTTPError) as error:
                    get(url, path)
                assert error.value.code == 404
                assert "no trace store" in json.loads(
                    error.value.read())["error"]

    def test_malformed_range_is_a_400(self, warm_store):
        export = TraceExport(warm_store.root)
        name = export.listing()[0]["key"]
        with serving(export=export) as url:
            for bad in ("bytes=9-5", "lines=0-4", "bytes=a-b"):
                with pytest.raises(urllib.error.HTTPError) as error:
                    get(url, f"/v1/dist/traces/{name}",
                        headers={"Range": bad})
                assert error.value.code == 400


class TestWorkerMismatchPolicy:
    def _mismatched_grant(self, tmp_path):
        plan = prepare_sweep(spec(), tmp_path / "out", jobs=2,
                             attach_baselines=True)
        set_generator_override(FAKE_GENERATOR)
        try:
            board = LeaseBoard(plan, lease_timeout=60.0)
            return board.request_lease("w0")
        finally:
            set_generator_override(None)

    def test_exit_2_without_fetch(self, tmp_path):
        granted = self._mismatched_grant(tmp_path)

        class Stub:
            def request_lease(self, worker):
                return granted

        lines = []
        assert run_worker("http://unused", "w0", client=Stub(),
                          log=lines.append) == 2
        assert any("generator mismatch" in line for line in lines)

    def test_unusable_advertised_generator_exits_2(self, tmp_path,
                                                   monkeypatch):
        granted = self._mismatched_grant(tmp_path)
        lease = dict(granted["lease"])
        lease["generator"] = "NOT-TWELVE-HEX-CHARS-EITHER"
        granted = dict(granted, lease=lease)

        class Stub:
            def request_lease(self, worker):
                return granted

        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path / "replica"))
        lines = []
        assert run_worker("http://unused", "w0", client=Stub(),
                          fetch_traces=True, log=lines.append) == 2
        assert any("unusable generator" in line for line in lines)

    def test_fetch_traces_requires_a_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        with pytest.raises(ValueError, match="trace store"):
            run_worker("http://unused", "w0", fetch_traces=True)


class TestTraceAdWire:
    def test_strict_decoding(self):
        good = {"key": "a__i1__s1__c0__g" + "0" * 12 + ".npz",
                "size": 10, "sha256": "ab" * 32}
        ad = trace_ad_from_wire(good)
        assert ad.to_wire() == good
        for broken in (
                {**good, "size": -1},
                {**good, "sha256": "xy" * 32},
                {**good, "sha256": "ab" * 31},
                {**good, "key": ""},
                {key: value for key, value in good.items()
                 if key != "size"},
                {**good, "extra": 1},
        ):
            with pytest.raises(ProtocolError):
                trace_ad_from_wire(broken)


class TestColdStoreConvergence:
    def test_cold_replica_workers_match_inline_bytes(self, tmp_path):
        """Workers started against an empty REPRO_TRACE_STORE fetch
        every archive over loopback HTTP and produce a results file
        byte-identical (after repair) to the inline run's; the replica
        archives are byte-identical to the coordinator's."""
        clean = tmp_path / "clean"
        dist = tmp_path / "dist"
        replica = tmp_path / "replica"
        run_sweep(spec(), clean, **quiet)
        summary = run_distributed_sweep(
            spec(), dist, transport="local", workers=2,
            lease_timeout=30.0, worker_store=replica, **quiet)
        assert summary.complete() and not summary.degraded()
        assert summary.computed == 4
        verify_store(spec(), dist, repair=True)
        verify_store(spec(), clean, repair=True)
        assert (dist / "results.jsonl").read_bytes() \
            == (clean / "results.jsonl").read_bytes()
        coordinator = TraceStore.from_env()
        replicated = sorted(path.name for path in replica.glob("*.npz"))
        assert len(replicated) >= 2
        for name in replicated:
            assert (replica / name).read_bytes() \
                == (coordinator.root / name).read_bytes()

    def test_worker_store_demands_local_transport(self, tmp_path):
        with pytest.raises(ValueError, match="local-transport"):
            run_distributed_sweep(spec(), tmp_path / "out",
                                  transport="http",
                                  worker_store=tmp_path / "replica",
                                  **quiet)


class TestAuthoritativeCoordinator:
    @pytest.fixture()
    def foreign_generator(self):
        """Pretend this process's trace sources hash to FAKE_GENERATOR:
        the coordinator stores archives and stamps leases/records under
        it, while worker subprocesses still compute their real local
        hash — a genuine cross-host version skew."""
        cached_trace.cache_clear()
        set_generator_override(FAKE_GENERATOR)
        yield FAKE_GENERATOR
        set_generator_override(None)
        cached_trace.cache_clear()

    def test_mismatched_workers_adopt_the_coordinators_store(
            self, tmp_path, foreign_generator):
        clean = tmp_path / "clean"
        dist = tmp_path / "dist"
        replica = tmp_path / "replica"
        run_sweep(spec(), clean, **quiet)   # warms gffff… archives
        summary = run_distributed_sweep(
            spec(), dist, transport="local", workers=2,
            lease_timeout=30.0, worker_store=replica, **quiet)
        assert summary.complete() and not summary.degraded()
        assert summary.computed == 4
        verify_store(spec(), dist, repair=True)
        verify_store(spec(), clean, repair=True)
        assert (dist / "results.jsonl").read_bytes() \
            == (clean / "results.jsonl").read_bytes()
        # Every record carries the coordinator's generator, and every
        # replica archive re-hashes to the coordinator's advertisement.
        for line in (dist / "results.jsonl").read_text().splitlines():
            assert json.loads(line)["generator"] == foreign_generator
        ads = {ad["key"]: ad["sha256"]
               for ad in TraceExport(TraceStore.from_env().root).listing()}
        fetched = [path for path in replica.glob("*.npz")
                   if f"g{foreign_generator}" in path.name]
        assert len(fetched) >= 2
        for path in fetched:
            assert archive_sha256(path) == ads[path.name]
