"""Wire-protocol locks: canonical round trips, typed rejection.

Two properties, Hypothesis-driven over generated documents:

* every valid frame round-trips encode → decode → encode
  *byte-identically* (the canonical-JSON contract the differential
  harness leans on);
* every malformed frame — truncated bytes, extra keys, wrong types,
  unknown document types, lane hashes that contradict their point
  identity — raises :class:`ProtocolError`, never a bare ``KeyError``
  or ``JSONDecodeError``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.protocol import (Heartbeat, ProtocolError, TaskFailed,
                                 TaskLease, TaskResult, decode,
                                 decode_document, encode, task_from_wire,
                                 task_to_wire)
from repro.scenarios.runner import _GroupTask
from repro.scenarios.spec import SweepPoint, point_hash

# --------------------------------------------------------------------------
# strategies

#: Short lowercase identifiers — workload names, engine names, labels.
names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1,
                max_size=12)

#: JSON-exact floats for the warmup fraction.
warmups = st.floats(min_value=0.0, max_value=0.95, allow_nan=False,
                    allow_infinity=False)

points = st.builds(
    SweepPoint,
    workload=names,
    instructions=st.integers(min_value=1, max_value=10**8),
    seed=st.integers(min_value=0, max_value=2**31),
    core=st.integers(min_value=0, max_value=63),
    warmup=warmups,
    capacity_bytes=st.integers(min_value=1024, max_value=2**24),
    associativity=st.integers(min_value=1, max_value=16),
    block_bytes=st.sampled_from([32, 64, 128]),
    replacement=st.sampled_from(["lru", "random"]),
    engine=names,
    params=st.dictionaries(names, st.integers(min_value=0, max_value=10**6),
                           max_size=4).map(
        lambda mapping: tuple(sorted(mapping.items()))),
    label=names,
    timing=st.booleans(),
)


def _task_from_points(parts) -> _GroupTask:
    lanes, kernel, attempt, baselines = parts
    first = lanes[0]
    return _GroupTask(
        workload=first.workload, instructions=first.instructions,
        seed=first.seed, core=first.core, warmup=first.warmup,
        kernel=kernel,
        lanes=tuple((point_hash(point), point) for point in lanes),
        baselines=baselines, attempt=attempt)


tasks = st.tuples(
    st.lists(points, min_size=1, max_size=3),
    st.sampled_from([None, "fast", "reference"]),
    st.integers(min_value=0, max_value=4),
    st.one_of(st.none(),
              st.dictionaries(names, st.fixed_dictionaries(
                  {"misses": st.integers(min_value=0, max_value=10**6)}),
                  max_size=2)),
).map(_task_from_points)

lease_ids = st.from_regex(r"lease-[0-9]{6}", fullmatch=True)

#: Record dicts as :func:`_run_group` emits them (shape only — the
#: protocol requires a string ``hash`` and passes the rest through).
records = st.fixed_dictionaries({
    "hash": st.text(alphabet="0123456789abcdef", min_size=8, max_size=64),
    "label": names,
    "generator": st.text(alphabet="0123456789abcdef", min_size=12,
                         max_size=12),
    "metrics": st.fixed_dictionaries(
        {"coverage": st.floats(allow_nan=False, allow_infinity=False)}),
})

documents = st.one_of(
    st.builds(TaskLease, lease=lease_ids,
              generator=st.text(alphabet="0123456789abcdef", min_size=12,
                                max_size=12),
              task=tasks),
    st.builds(TaskResult, lease=lease_ids, worker=names,
              records=st.lists(records, max_size=3).map(tuple),
              baselines=st.dictionaries(names, st.fixed_dictionaries(
                  {"misses": st.integers(min_value=0)}), max_size=2)),
    st.builds(TaskFailed, lease=lease_ids, worker=names,
              kind=st.sampled_from(["error", "worker-died"]),
              error=names),
    st.builds(Heartbeat, lease=lease_ids, worker=names,
              beat=st.integers(min_value=0, max_value=2**31)),
)


# --------------------------------------------------------------------------
# round trips


class TestRoundTrip:
    @settings(deadline=None)
    @given(documents)
    def test_encode_decode_encode_is_byte_identical(self, document):
        frame = encode(document)
        decoded = decode(frame)
        assert type(decoded) is type(document)
        assert encode(decoded) == frame

    @settings(deadline=None)
    @given(tasks)
    def test_task_wire_round_trip_is_exact(self, task):
        rebuilt = task_from_wire(task_to_wire(task))
        assert rebuilt == task

    @settings(deadline=None)
    @given(documents)
    def test_decode_accepts_str_frames_too(self, document):
        frame = encode(document)
        assert decode(frame.decode("utf-8")) == decode(frame)


# --------------------------------------------------------------------------
# malformed frames


class TestMalformed:
    @settings(deadline=None)
    @given(documents, st.data())
    def test_truncated_frames_raise_protocol_error(self, document, data):
        frame = encode(document)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(ProtocolError):
            decode(frame[:cut])

    @settings(deadline=None)
    @given(documents, names)
    def test_extra_keys_raise_protocol_error(self, document, key):
        wire = document.to_wire()
        wire[f"x-{key}"] = 1
        with pytest.raises(ProtocolError):
            decode_document(wire)

    @settings(deadline=None)
    @given(documents)
    def test_wrong_lease_type_raises_protocol_error(self, document):
        wire = document.to_wire()
        wire["lease"] = 12345
        with pytest.raises(ProtocolError):
            decode_document(wire)

    def test_unknown_type_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="unknown document type"):
            decode_document({"type": "gossip"})

    def test_missing_type_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="no string 'type'"):
            decode_document({"lease": "lease-000001"})

    def test_non_object_frames_raise_protocol_error(self):
        for frame in (b"[]", b'"task-lease"', b"17", b"null"):
            with pytest.raises(ProtocolError):
                decode(frame)

    def test_invalid_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode(b"{nope")

    def test_invalid_utf8_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="not UTF-8"):
            decode(b"\xff\xfe{}")

    @settings(deadline=None)
    @given(tasks)
    def test_lane_hash_mismatch_raises_protocol_error(self, task):
        wire = task_to_wire(task)
        wire["lanes"][0]["hash"] = "0" * 64
        with pytest.raises(ProtocolError, match="does not match"):
            task_from_wire(wire)

    @settings(deadline=None)
    @given(tasks)
    def test_label_is_carried_outside_the_hash(self, task):
        """Labels are display-only (excluded from point_hash), so the
        wire must carry them in the lane envelope — and changing one
        must still decode, with the label preserved."""
        wire = task_to_wire(task)
        wire["lanes"][0]["label"] = "renamed"
        rebuilt = task_from_wire(json.loads(json.dumps(wire)))
        assert rebuilt.lanes[0][1].label == "renamed"
        assert rebuilt.lanes[0][0] == wire["lanes"][0]["hash"]

    def test_heartbeat_bool_beat_is_rejected(self):
        wire = Heartbeat(lease="lease-000001", worker="w0",
                         beat=1).to_wire()
        wire["beat"] = True
        with pytest.raises(ProtocolError, match="beat"):
            decode_document(wire)

    def test_records_without_hash_are_rejected(self):
        wire = TaskResult(lease="lease-000001", worker="w0",
                          records=({"label": "x"},),
                          baselines={}).to_wire()
        with pytest.raises(ProtocolError, match="hash"):
            decode_document(wire)

    def test_empty_lane_list_is_rejected(self):
        document = {
            "type": "task-lease", "lease": "lease-000001",
            "generator": "0" * 12,
            "task": {"workload": "w", "instructions": 1, "seed": 0,
                     "core": 0, "warmup": 0.0, "kernel": None,
                     "attempt": 0, "lanes": [], "baselines": None},
        }
        with pytest.raises(ProtocolError, match="non-empty"):
            decode_document(document)
