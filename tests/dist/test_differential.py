"""The differential matrix: serial == --jobs 2 == --transport local.

The PR's headline lock (ISSUE 9 acceptance criteria): the
``sab-ablation.yaml`` scenario — rescaled to test size, 12 points over
2 trace groups of 6 engine lanes — is run serially, through the
process pool, and through the distributed tier with two real worker
subprocesses, and all three ``results.jsonl`` stores must be
**byte-for-byte identical** after ``verify --repair``
canonicalization.  A fourth run repeats the local transport under a
worker-kill fault plan (every first attempt dies mid-group) and must
converge to the same bytes.

Serial runs additionally lock the *raw* (pre-repair) bytes of the
parallel/distributed stores' record set: repair only reorders into
spec expansion order, so equal repaired bytes + equal record multisets
pin the whole contract.
"""

import json

import pytest

from repro.experiments.parallel import shutdown_shared_pool
from repro.faults import FAULT_PLAN_ENV
from repro.faults import plan as plan_module
from repro.scenarios import (ResultsStore, load_spec, run_sweep,
                             verify_store)

quiet = {"log": lambda line: None}

#: Test-scale override of the checked-in ablation scenario: one
#: workload, two cores -> 2 trace groups x 6 PIF geometry lanes.
RESCALE = {"workloads": ["dss-qry2"], "instructions": 30_000, "cores": 2}


@pytest.fixture(autouse=True)
def pristine(monkeypatch):
    """No armed fault plan and no pooled workers leak across tests."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    plan_module.reset()
    yield
    plan_module.reset()
    shutdown_shared_pool()


@pytest.fixture(scope="module")
def spec(repo_root):
    return load_spec(repo_root / "examples" / "scenarios"
                     / "sab-ablation.yaml", sweep_overrides=RESCALE)


def canonical_bytes(spec, out):
    """Repair-canonicalize a store and return its bytes (asserting the
    fsck comes back clean)."""
    verify_store(spec, out, repair=True)
    assert verify_store(spec, out).clean()
    return (out / "results.jsonl").read_bytes()


def run_distributed(spec, out, **kwargs):
    from repro.dist import run_distributed_sweep

    kwargs.setdefault("workers", 2)
    return run_distributed_sweep(spec, out, **quiet, **kwargs)


class TestDifferentialMatrix:
    def test_serial_jobs2_and_local_transport_are_byte_identical(
            self, tmp_path, spec):
        serial = tmp_path / "serial"
        pooled = tmp_path / "pooled"
        dist = tmp_path / "dist"

        summary_serial = run_sweep(spec, serial, **quiet)
        summary_pooled = run_sweep(spec, pooled, jobs=2, **quiet)
        shutdown_shared_pool()
        summary_dist = run_distributed(spec, dist)

        for summary in (summary_serial, summary_pooled, summary_dist):
            assert summary.complete() and not summary.degraded()
            assert summary.computed == 12

        # Identical record sets even before canonicalization…
        reference = ResultsStore(serial).load_current()
        assert ResultsStore(pooled).load_current() == reference
        assert ResultsStore(dist).load_current() == reference

        # …and identical bytes after it.
        reference_bytes = canonical_bytes(spec, serial)
        assert canonical_bytes(spec, pooled) == reference_bytes
        assert canonical_bytes(spec, dist) == reference_bytes

    def test_local_transport_under_worker_kill_converges(
            self, tmp_path, spec, monkeypatch):
        """Every first-attempt task kills its worker mid-group
        (``dist.worker`` fires before the walk).  Lease expiry is
        observed via child exit, the tasks are requeued on respawned
        workers at attempt 1, and the final store still matches a
        fault-free serial run byte-for-byte."""
        serial = tmp_path / "serial"
        fault = tmp_path / "fault"
        run_sweep(spec, serial, **quiet)

        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({"faults": [
            {"site": "dist.worker", "action": "kill",
             "match": "attempt=0", "times": None}]}))
        plan_module.reset()
        summary = run_distributed(spec, fault)
        assert summary.complete() and not summary.degraded()
        assert summary.computed == 12

        monkeypatch.delenv(FAULT_PLAN_ENV)
        plan_module.reset()
        assert canonical_bytes(spec, fault) \
            == canonical_bytes(spec, serial)

    def test_distributed_run_is_mutually_resumable_with_inline(
            self, tmp_path, spec):
        """A store half-filled by the distributed tier is finished by
        the inline runner (and vice versa) with zero recomputation —
        the mutual-resume half of the identity contract."""
        out = tmp_path / "out"
        first = run_distributed(spec, out, limit=6)
        assert (first.computed, first.remaining) == (6, 6)

        finish = run_sweep(spec, out, **quiet)
        assert finish.complete()
        assert (finish.skipped, finish.computed) == (6, 6)

        serial = tmp_path / "serial"
        run_sweep(spec, serial, **quiet)
        assert canonical_bytes(spec, out) == canonical_bytes(spec, serial)

        # And the other direction: inline starts, distributed finishes.
        other = tmp_path / "other"
        run_sweep(spec, other, limit=6, **quiet)
        second = run_distributed(spec, other)
        assert second.complete()
        assert (second.skipped, second.computed) == (6, 6)
        assert canonical_bytes(spec, other) \
            == canonical_bytes(spec, serial)
