"""Instruction-cache model: hits, misses, prefetch bits, LRU, and a
model-based property test against a reference implementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.icache import InstructionCache
from repro.common.config import CacheConfig


def tiny_cache(sets=2, ways=2):
    return InstructionCache(CacheConfig(
        capacity_bytes=sets * ways * 64, associativity=ways))


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert not cache.access(5).hit
        assert cache.access(5).hit

    def test_set_mapping(self):
        cache = tiny_cache(sets=2)
        assert cache.set_index(0) == 0
        assert cache.set_index(1) == 1
        assert cache.set_index(2) == 0

    def test_lru_eviction_within_set(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.access(0)
        cache.access(1)
        cache.access(0)      # 1 is now LRU
        cache.access(2)      # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_miss_without_fill(self):
        cache = tiny_cache()
        result = cache.access(3, fill_on_miss=False)
        assert not result.hit
        assert not cache.contains(3)

    def test_invalidate(self):
        cache = tiny_cache()
        cache.access(3)
        assert cache.invalidate(3)
        assert not cache.contains(3)
        assert not cache.invalidate(3)

    def test_resident_blocks(self):
        cache = tiny_cache()
        cache.access(1)
        cache.access(2)
        assert sorted(cache.resident_blocks()) == [1, 2]


class TestPrefetchSemantics:
    def test_prefetch_installs(self):
        cache = tiny_cache()
        assert cache.prefetch(7)
        assert cache.contains(7)

    def test_prefetch_probe_filters_resident(self):
        cache = tiny_cache()
        cache.access(7)
        assert not cache.prefetch(7)
        assert cache.stats.prefetch_drops_present == 1

    def test_demand_hit_on_prefetch_sets_tag_semantics(self):
        cache = tiny_cache()
        cache.prefetch(7)
        first = cache.access(7)
        assert first.hit and first.was_prefetched
        assert not first.tagged
        second = cache.access(7)
        assert second.hit and not second.was_prefetched
        assert second.tagged

    def test_demand_miss_is_tagged(self):
        cache = tiny_cache()
        result = cache.access(9)
        assert result.tagged

    def test_useful_prefetch_counted_once(self):
        cache = tiny_cache()
        cache.prefetch(7)
        cache.access(7)
        cache.access(7)
        assert cache.stats.useful_prefetches == 1

    def test_evicted_unused_prefetch_counted(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.prefetch(0)
        cache.access(1)
        cache.access(2)  # evicts prefetched-but-unused 0 (LRU)
        assert cache.stats.evicted_unused_prefetches == 1


class TestStats:
    def test_miss_rate(self):
        cache = tiny_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate() == pytest.approx(0.5)
        assert cache.stats.hit_rate() == pytest.approx(0.5)

    def test_mpki(self):
        cache = tiny_cache()
        cache.access(0)
        assert cache.stats.mpki(1000) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            cache.stats.mpki(0)

    def test_describe_serializable(self):
        import json

        cache = tiny_cache()
        cache.access(0)
        assert json.dumps(cache.stats.describe())


class _ReferenceCache:
    """Per-set LRU lists: the obviously-correct model."""

    def __init__(self, sets, ways):
        self.sets = [[] for _ in range(sets)]
        self.ways = ways
        self.n = sets

    def access(self, block):
        entries = self.sets[block % self.n]
        hit = block in entries
        if hit:
            entries.remove(block)
        elif len(entries) >= self.ways:
            entries.pop(0)
        entries.append(block)
        return hit


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=31), max_size=300),
       st.sampled_from([(1, 2), (2, 2), (4, 4), (2, 1)]))
def test_against_reference_model(blocks, geometry):
    sets, ways = geometry
    cache = tiny_cache(sets=sets, ways=ways)
    reference = _ReferenceCache(sets, ways)
    for block in blocks:
        assert cache.access(block).hit == reference.access(block)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
def test_occupancy_never_exceeds_geometry(blocks):
    cache = tiny_cache(sets=2, ways=2)
    for block in blocks:
        cache.access(block)
        assert len(cache.resident_blocks()) <= 4


# ----------------------------------------------------------------------
# Differential lock: the flat-array kernel vs the preserved object model.

_OPS = st.lists(
    st.tuples(st.sampled_from(["access", "access_nofill", "prefetch",
                               "fill", "fill_pf", "invalidate", "contains"]),
              st.integers(min_value=-4, max_value=59)),
    max_size=400)


@settings(max_examples=40, deadline=None)
@given(_OPS,
       st.sampled_from(["lru", "fifo", "random"]),
       st.sampled_from([(2, 1), (4, 2), (2, 4), (8, 2)]))
def test_flat_kernel_matches_reference_cache(ops, replacement, geometry):
    """Every operation returns the same outcome on the flat kernel and
    on :class:`ReferenceInstructionCache`, and the final state (resident
    blocks, all counters) is identical — for every replacement policy
    and associativity, negative block addresses included."""
    from repro.cache.reference import ReferenceInstructionCache

    sets, ways = geometry
    config = CacheConfig(capacity_bytes=sets * ways * 64,
                         associativity=ways, replacement=replacement)
    fast = InstructionCache(config)
    reference = ReferenceInstructionCache(config)
    for op, block in ops:
        if op == "access":
            assert fast.access_fast(block) == reference.access_fast(block)
        elif op == "access_nofill":
            assert fast.access_fast(block, False) == \
                reference.access_fast(block, False)
        elif op == "prefetch":
            assert fast.prefetch(block) == reference.prefetch(block)
        elif op == "fill":
            assert fast.fill(block) == reference.fill(block)
        elif op == "fill_pf":
            assert fast.fill(block, prefetched=True) == \
                reference.fill(block, prefetched=True)
        elif op == "invalidate":
            assert fast.invalidate(block) == reference.invalidate(block)
        else:
            assert fast.contains(block) == reference.contains(block)
    assert sorted(fast.resident_blocks()) == \
        sorted(reference.resident_blocks())
    assert fast.stats == reference.stats


class TestResultCodes:
    """access_fast's int encoding of the AccessResult semantics."""

    def test_miss_hit_prefetched_codes(self):
        from repro.cache.icache import HIT, HIT_PREFETCHED, MISS

        cache = tiny_cache()
        assert cache.access_fast(3) == MISS
        assert cache.access_fast(3) == HIT
        cache.prefetch(7)
        assert cache.access_fast(7) == HIT_PREFETCHED
        assert cache.access_fast(7) == HIT  # referenced: tag consumed

    def test_codes_agree_with_access_results(self):
        cache_codes = tiny_cache()
        cache_objects = tiny_cache()
        for block in (1, 1, 2, 3, 4, 1, 2, 5, 5):
            code = cache_codes.access_fast(block)
            result = cache_objects.access(block)
            assert (code != 0) == result.hit
            assert (code == 2) == result.was_prefetched
