"""Replacement policy behaviour."""

import random

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRUPolicy:
    def test_initial_victim_is_way_zero(self):
        assert LRUPolicy(4).victim() == 0

    def test_access_promotes(self):
        policy = LRUPolicy(2)
        policy.on_access(0)
        assert policy.victim() == 1

    def test_fill_promotes(self):
        policy = LRUPolicy(3)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_fill(2)
        assert policy.victim() == 0
        policy.on_access(0)
        assert policy.victim() == 1

    def test_invalidate_moves_to_lru(self):
        policy = LRUPolicy(3)
        for way in range(3):
            policy.on_fill(way)
        policy.on_invalidate(2)
        assert policy.victim() == 2

    def test_recency_order_exposed(self):
        policy = LRUPolicy(2)
        policy.on_access(1)
        assert policy.recency_order() == [0, 1]


class TestFIFOPolicy:
    def test_access_does_not_promote(self):
        policy = FIFOPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_access(0)
        assert policy.victim() == 0

    def test_fill_order(self):
        policy = FIFOPolicy(2)
        policy.on_fill(1)
        policy.on_fill(0)
        assert policy.victim() == 1


class TestRandomPolicy:
    def test_deterministic_under_seed(self):
        a = RandomPolicy(4, random.Random(9))
        b = RandomPolicy(4, random.Random(9))
        assert [a.victim() for _ in range(16)] == [
            b.victim() for _ in range(16)]

    def test_victims_in_range(self):
        policy = RandomPolicy(4, random.Random(1))
        assert all(0 <= policy.victim() < 4 for _ in range(64))


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("fifo", FIFOPolicy), ("random", RandomPolicy)])
    def test_makes_each(self, name, cls):
        assert isinstance(make_policy(name, 2), cls)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_policy("plru", 2)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            LRUPolicy(0)
