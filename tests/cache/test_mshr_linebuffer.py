"""MSHR file and line buffer."""

import pytest

from repro.cache.line_buffer import LineBuffer
from repro.cache.mshr import MSHRFile


class TestMSHR:
    def test_allocate_and_lookup(self):
        mshr = MSHRFile(2)
        assert mshr.allocate(5, ready_at=10, is_prefetch=True)
        fill = mshr.lookup(5)
        assert fill is not None and fill.ready_at == 10

    def test_capacity_reject(self):
        mshr = MSHRFile(1)
        assert mshr.allocate(1, 5, False)
        assert not mshr.allocate(2, 5, False)
        assert mshr.rejects_full == 1

    def test_merge_demotes_prefetch(self):
        mshr = MSHRFile(2)
        mshr.allocate(5, 10, is_prefetch=True)
        assert mshr.allocate(5, 20, is_prefetch=False)
        assert mshr.merges == 1
        assert not mshr.lookup(5).is_prefetch
        assert len(mshr) == 1

    def test_merge_keeps_prefetch_flag_for_prefetch(self):
        mshr = MSHRFile(2)
        mshr.allocate(5, 10, is_prefetch=False)
        mshr.allocate(5, 20, is_prefetch=True)
        assert not mshr.lookup(5).is_prefetch

    def test_drain_ready(self):
        mshr = MSHRFile(4)
        mshr.allocate(1, 10, False)
        mshr.allocate(2, 20, False)
        ready = mshr.drain_ready(now=15)
        assert [f.block for f in ready] == [1]
        assert len(mshr) == 1

    def test_clear(self):
        mshr = MSHRFile(4)
        mshr.allocate(1, 10, False)
        mshr.clear()
        assert len(mshr) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestLineBuffer:
    def test_absorbs_repeat_fetches(self):
        buffer = LineBuffer(2)
        assert not buffer.access(1)
        assert buffer.access(1)
        assert buffer.hits == 1

    def test_lru_eviction(self):
        buffer = LineBuffer(2)
        buffer.access(1)
        buffer.access(2)
        buffer.access(1)     # promote 1
        buffer.access(3)     # evicts 2
        assert buffer.access(1)
        assert not buffer.access(2)

    def test_filter_rate(self):
        buffer = LineBuffer(4)
        buffer.access(1)
        buffer.access(1)
        assert buffer.filter_rate() == pytest.approx(0.5)

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            LineBuffer(0)
