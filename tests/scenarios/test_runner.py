"""Sweep execution: equivalence with the hand-written sweeps, resume
semantics, batching, and determinism across job counts.

The two acceptance locks of the scenario subsystem live here:

* the checked-in ``sab-ablation.yaml`` scenario reproduces
  :func:`repro.experiments.ablations.run_sab_ablation` **bit-identically**
  (same floats, not approximately);
* an interrupted sweep resumed from its results store recomputes
  nothing and ends with output identical to an uninterrupted run.
"""

import json

import pytest

from repro.experiments.ablations import run_sab_ablation
from repro.experiments.common import ExperimentConfig
from repro.scenarios import (ResultsStore, coverage_matrix, load_spec,
                             parse_spec, run_sweep, summarize)
from repro.scenarios import runner as runner_module

#: Small scale shared by the runner tests (trace generation dominates).
SMALL = {"workloads": ["dss-qry2"], "instructions": 30_000, "seeds": 3,
         "cores": 2}


def small_spec(**sweep_overrides):
    sweep = {
        **SMALL,
        "cache": {"kb": 16},
        "engines": ["next-line",
                    {"name": "pif", "params": {"sab_count": 4,
                                               "sab_window_regions": 3}}],
    }
    sweep.update(sweep_overrides)
    return parse_spec({"name": "small", "sweep": sweep})


quiet = {"log": lambda line: None}


class TestEquivalence:
    def test_sab_scenario_matches_handwritten_ablation(self, repo_root,
                                                       tmp_path):
        """The ported scenario file reproduces run_sab_ablation exactly.

        The checked-in spec is experiment scale; the test rescales it
        through sweep_overrides (same mechanism users get) and runs the
        hand-written sweep at the matching ExperimentConfig.  Coverage
        must be bit-identical — both paths feed identical request
        sequences through the same single-pass engine.
        """
        spec = load_spec(
            repo_root / "examples" / "scenarios" / "sab-ablation.yaml",
            sweep_overrides={"workloads": ["dss-qry2"],
                             "instructions": 30_000, "cores": 2})
        summary = run_sweep(spec, tmp_path / "out", **quiet)
        assert summary.complete()
        matrix = coverage_matrix(spec, ResultsStore(tmp_path / "out"))

        config = ExperimentConfig(instructions=30_000, cores=2,
                                  workloads=("dss-qry2",))
        ablation = run_sab_ablation(config)
        assert matrix == ablation.coverage  # bit-identical, not approx

    def test_checked_in_grid_matches_sab_grid(self, repo_root):
        """The scenario's zipped param grid is exactly ablations.SAB_GRID."""
        from repro.experiments.ablations import SAB_GRID

        spec = load_spec(
            repo_root / "examples" / "scenarios" / "sab-ablation.yaml")
        grids = [
            (dict(v.params)["sab_count"], dict(v.params)["sab_window_regions"])
            for v in spec.variants
        ]
        assert tuple(grids) == SAB_GRID
        assert spec.labels() == [f"{c}x{w}" for c, w in SAB_GRID]


class TestResume:
    def test_interrupted_sweep_resumes_bit_identical(self, tmp_path,
                                                     monkeypatch):
        """Kill mid-sweep (via --limit), rerun, assert no recomputation
        and byte-identical results to an uninterrupted run."""
        spec = small_spec()
        total = len(spec.points())
        assert total == 4

        # Uninterrupted reference run.
        ref_dir = tmp_path / "ref"
        assert run_sweep(spec, ref_dir, **quiet).computed == total

        # Interrupted run: only the first trace group (2 of 4 points).
        out = tmp_path / "out"
        first = run_sweep(spec, out, limit=2, **quiet)
        assert (first.computed, first.remaining) == (2, 2)
        after_interrupt = ResultsStore(out).records_path.read_text()

        # Resume, counting simulation calls: the stored points must not
        # be re-simulated.
        calls = []
        real = runner_module.run_multi_prefetch_simulation

        def counting(bundle, prefetchers, *args, **kwargs):
            calls.append(len(prefetchers))
            return real(bundle, prefetchers, *args, **kwargs)

        monkeypatch.setattr(runner_module, "run_multi_prefetch_simulation",
                            counting)
        second = run_sweep(spec, out, **quiet)
        assert (second.skipped, second.computed) == (2, 2)
        assert second.complete()
        assert sum(calls) == 2  # exactly the missing lanes, one walk

        # The first run's records were appended to, never rewritten.
        final = ResultsStore(out).records_path.read_text()
        assert final.startswith(after_interrupt)

        # And the resumed store equals the uninterrupted one record for
        # record (serial runs: identical bytes, identical order).
        assert final == ResultsStore(ref_dir).records_path.read_text()

    def test_rerun_of_complete_sweep_is_noop(self, tmp_path):
        spec = small_spec()
        run_sweep(spec, tmp_path, **quiet)
        before = ResultsStore(tmp_path).records_path.read_text()
        again = run_sweep(spec, tmp_path, **quiet)
        assert (again.computed, again.skipped) == (0, len(spec.points()))
        assert ResultsStore(tmp_path).records_path.read_text() == before

    def test_truncated_tail_recomputed_only(self, tmp_path):
        """A record lost to a mid-write kill is recomputed; intact ones
        are not."""
        spec = small_spec()
        run_sweep(spec, tmp_path, **quiet)
        store = ResultsStore(tmp_path)
        lines = store.records_path.read_text().splitlines()
        store.records_path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][:20])
        pending, skipped = runner_module.missing_points(spec, store)
        assert (len(pending), skipped) == (1, len(spec.points()) - 1)
        resumed = run_sweep(spec, tmp_path, **quiet)
        assert (resumed.computed, resumed.skipped) == (
            1, len(spec.points()) - 1)
        assert resumed.complete()

    def test_stale_generator_records_recomputed(self, tmp_path):
        spec = small_spec()
        run_sweep(spec, tmp_path, **quiet)
        store = ResultsStore(tmp_path)
        doctored = []
        for line in store.records_path.read_text().splitlines():
            record = json.loads(line)
            record["generator"] = "0" * 12
            doctored.append(json.dumps(record))
        store.records_path.write_text("\n".join(doctored) + "\n")
        again = run_sweep(spec, tmp_path, **quiet)
        assert again.computed == len(spec.points())
        assert again.skipped == 0


class TestCooperativeStop:
    def test_stop_before_start_computes_nothing(self, tmp_path):
        spec = small_spec()
        summary = run_sweep(spec, tmp_path, should_stop=lambda: True,
                            **quiet)
        assert (summary.computed, summary.skipped) == (0, 0)
        assert summary.remaining == len(spec.points())

    def test_stop_between_groups_checkpoints_then_resumes(self, tmp_path):
        """`should_stop` raised after the first trace group (what the
        serve daemon's SIGTERM path does): that group's records are on
        disk, the rest is left for a resume that ends byte-identical to
        an uninterrupted run."""
        spec = small_spec()
        ref_dir = tmp_path / "ref"
        run_sweep(spec, ref_dir, **quiet)

        stop = {"requested": False}

        def watch(line):
            if "[1/" in line:
                stop["requested"] = True

        out = tmp_path / "out"
        first = run_sweep(spec, out, log=watch,
                          should_stop=lambda: stop["requested"])
        assert (first.computed, first.remaining) == (2, 2)

        resumed = run_sweep(spec, out, **quiet)
        assert (resumed.skipped, resumed.computed) == (2, 2)
        assert resumed.complete()
        assert ResultsStore(out).records_path.read_bytes() \
            == ResultsStore(ref_dir).records_path.read_bytes()


class TestExecution:
    def test_jobs_do_not_change_records(self, tmp_path):
        """Parallel fan-out yields the same record *set* (arrival order
        may differ, content must not)."""
        spec = small_spec()
        run_sweep(spec, tmp_path / "serial", **quiet)
        run_sweep(spec, tmp_path / "par", jobs=2, **quiet)
        serial = sorted(
            ResultsStore(tmp_path / "serial").records_path.read_text()
            .splitlines())
        parallel = sorted(
            ResultsStore(tmp_path / "par").records_path.read_text()
            .splitlines())
        assert serial == parallel

    def test_kernels_agree(self, tmp_path):
        """Reference kernel records identical metrics (kernel field
        aside) — the differential lock extended to the sweep path."""
        spec = small_spec(cores=1)
        run_sweep(spec, tmp_path / "fast", kernel="fast", **quiet)
        run_sweep(spec, tmp_path / "ref", kernel="reference", **quiet)

        def metrics(root):
            return {
                record["hash"]: record["metrics"]
                for record in map(
                    json.loads,
                    ResultsStore(root).records_path.read_text().splitlines())
            }

        assert metrics(tmp_path / "fast") == metrics(tmp_path / "ref")

    def test_lanes_batch_into_one_walk_per_trace(self, tmp_path,
                                                 monkeypatch):
        spec = small_spec()  # 2 engines x 2 cores -> 2 groups of 2 lanes
        walks = []
        real = runner_module.run_multi_prefetch_simulation

        def counting(bundle, prefetchers, *args, **kwargs):
            walks.append(len(prefetchers))
            return real(bundle, prefetchers, *args, **kwargs)

        monkeypatch.setattr(runner_module, "run_multi_prefetch_simulation",
                            counting)
        run_sweep(spec, tmp_path, **quiet)
        assert walks == [2, 2]

    def test_timing_records_speedup(self, tmp_path):
        spec = small_spec(cores=1, timing=True)
        run_sweep(spec, tmp_path, **quiet)
        summary = summarize(spec, ResultsStore(tmp_path))
        assert summary.has_timing
        for _, cells in summary.rows:
            for cell in cells.values():
                assert cell is not None and cell.speedup is not None
                assert cell.speedup > 0.0

    def test_bad_limit_and_jobs_rejected(self, tmp_path):
        spec = small_spec()
        with pytest.raises(ValueError):
            run_sweep(spec, tmp_path, jobs=0, **quiet)
        with pytest.raises(ValueError):
            run_sweep(spec, tmp_path, limit=-1, **quiet)


class TestSharding:
    """Lane sharding: wide trace groups split under jobs > 1, records
    stay bit-identical, scheduling is deterministic largest-first."""

    def wide_spec(self):
        # One trace group of 8 lanes (4 geometries x 2 engines).
        return small_spec(cores=1, cache={"kb": [8, 16, 32, 64]})

    def test_shard_tasks_split_and_order(self):
        from repro.scenarios.runner import _group_tasks, _shard_tasks

        spec = self.wide_spec()
        pending = [(f"h{i}", point) for i, point in enumerate(spec.points())]
        groups = _group_tasks(pending, None)
        assert len(groups) == 1 and len(groups[0].lanes) == 8
        sharded = _shard_tasks(groups, jobs=2)
        assert len(sharded) == 4  # jobs * oversubscription
        assert sorted(len(task.lanes) for task in sharded) == [2, 2, 2, 2]
        # Deterministic: same input -> same shard list.
        assert sharded == _shard_tasks(_group_tasks(pending, None), jobs=2)
        # Largest-estimated-cost first.
        costs = [task.cost() for task in sharded]
        assert costs == sorted(costs, reverse=True)
        # All lanes survive exactly once, serial path untouched.
        shard_lanes = [lane for task in sharded for lane in task.lanes]
        assert sorted(digest for digest, _ in shard_lanes) == \
            sorted(digest for digest, _ in pending)
        assert _shard_tasks(groups, jobs=1) is groups

    def test_single_lane_tasks_stop_splitting(self):
        from repro.scenarios.runner import _group_tasks, _shard_tasks

        spec = small_spec(cores=1)  # 1 group x 2 lanes
        pending = [(f"h{i}", point) for i, point in enumerate(spec.points())]
        sharded = _shard_tasks(_group_tasks(pending, None), jobs=8)
        assert len(sharded) == 2  # cannot split below one lane

    def test_sharded_run_matches_serial_records(self, tmp_path):
        spec = self.wide_spec()
        run_sweep(spec, tmp_path / "serial", **quiet)
        run_sweep(spec, tmp_path / "sharded", jobs=3, **quiet)
        serial = sorted(
            ResultsStore(tmp_path / "serial").records_path.read_text()
            .splitlines())
        sharded = sorted(
            ResultsStore(tmp_path / "sharded").records_path.read_text()
            .splitlines())
        assert serial == sharded


class TestBaselineSidecar:
    def test_sidecar_written_and_reused(self, tmp_path, monkeypatch):
        """The first run persists baselines; a rerun (resume no-op
        aside) and a same-directory re-sweep replay zero baselines."""
        from repro.scenarios import BaselineSidecar
        from repro.sim import baseline as baseline_module

        spec = small_spec(cores=1)
        baseline_module.clear_baseline_memo()
        run_sweep(spec, tmp_path, **quiet)
        sidecar = BaselineSidecar(tmp_path)
        entries = sidecar.load()
        assert entries  # one per (trace, geometry, warmup)
        for payload in entries.values():
            assert payload["misses"] >= 0

        # Doctor the store empty so every point recomputes, clear the
        # in-process memo, and count real replays on the second run.
        ResultsStore(tmp_path).records_path.unlink()
        baseline_module.clear_baseline_memo()
        calls = []
        real = baseline_module.replay_baseline

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(baseline_module, "replay_baseline", counting)
        run_sweep(spec, tmp_path, **quiet)
        assert not calls  # every baseline came from the sidecar

    def test_corrupt_sidecar_lines_are_skipped(self, tmp_path):
        from repro.scenarios import BaselineSidecar

        spec = small_spec(cores=1)
        run_sweep(spec, tmp_path, **quiet)
        sidecar = BaselineSidecar(tmp_path)
        good = sidecar.load()
        with open(sidecar.path, "a") as handle:
            handle.write("{truncated\n[]\n")
        assert sidecar.load() == good


class TestReporting:
    def test_report_rows_expose_varying_axes(self, tmp_path):
        spec = small_spec(seeds=[3, 4], cores=1)
        run_sweep(spec, tmp_path, **quiet)
        summary = summarize(spec, ResultsStore(tmp_path))
        assert summary.row_fields == ("workload", "seed")
        assert [key for key, _ in summary.rows] == [
            ("dss-qry2", 3), ("dss-qry2", 4)]

    def test_incomplete_sweep_reports_gaps(self, tmp_path):
        from repro.scenarios import format_markdown, format_status

        spec = small_spec()
        run_sweep(spec, tmp_path, limit=2, **quiet)
        summary = summarize(spec, ResultsStore(tmp_path))
        assert summary.computed == 2 and summary.total == 4
        rendered = format_markdown(summary)
        assert "incomplete" in rendered
        assert "—" in rendered  # the missing cells
        status = format_status(spec, ResultsStore(tmp_path))
        assert "missing    2" in status
        with pytest.raises(ValueError, match="incomplete"):
            coverage_matrix(spec, ResultsStore(tmp_path))

    def test_csv_round_trips_fraction_values(self, tmp_path):
        import csv
        import io

        from repro.scenarios import format_csv

        spec = small_spec(cores=1)
        run_sweep(spec, tmp_path, **quiet)
        summary = summarize(spec, ResultsStore(tmp_path))
        rows = list(csv.DictReader(io.StringIO(format_csv(summary))))
        assert len(rows) == 2
        for row in rows:
            coverage = float(row["coverage"])  # fraction, not percent
            assert -1.0 <= coverage <= 1.0
            assert int(row["points"]) == 1
