"""Scenario spec parsing, validation, expansion, and hash stability.

The rule (DESIGN.md, "Scenario sweeps"): every axis the spec format
grows must round-trip through these tests — a validation case naming
the key, and an expansion case proving the axis lands in the point
identity (and therefore the hash).
"""

import json

import pytest

from repro.scenarios.spec import (ScenarioSpec, SpecError, SweepPoint,
                                  load_spec, parse_spec, point_hash)


def minimal(**sweep_overrides):
    """A valid one-point spec dict, with sweep keys overridden."""
    sweep = {
        "workloads": ["dss-qry2"],
        "instructions": 30_000,
        "engines": ["next-line"],
    }
    sweep.update(sweep_overrides)
    return {"name": "test", "sweep": sweep}


class TestValidation:
    def test_minimal_spec_parses(self):
        spec = parse_spec(minimal())
        assert isinstance(spec, ScenarioSpec)
        assert len(spec.points()) == 1

    @pytest.mark.parametrize("mutate, named_key", [
        (lambda raw: raw.pop("name"), "spec.name"),
        (lambda raw: raw.update(extra=1), "'extra'"),
        (lambda raw: raw["sweep"].update(warmupp=0.4), "'warmupp'"),
        (lambda raw: raw["sweep"].update(cache={"kbb": 32}), "'kbb'"),
        (lambda raw: raw["sweep"].pop("workloads"), "sweep.workloads"),
        (lambda raw: raw["sweep"].pop("instructions"), "sweep.instructions"),
        (lambda raw: raw["sweep"].update(workloads=["spec2017"]),
         "'spec2017'"),
        (lambda raw: raw["sweep"].update(mode="grid"), "sweep.mode"),
        (lambda raw: raw["sweep"].update(cores=0), "sweep.cores"),
        (lambda raw: raw["sweep"].update(timing="yes"), "sweep.timing"),
        (lambda raw: raw["sweep"].update(warmup=1.5), "sweep.warmup"),
        (lambda raw: raw["sweep"].update(instructions=-5),
         "sweep.instructions"),
        (lambda raw: raw["sweep"].update(
            cache={"replacement": "plru"}), "sweep.cache.replacement"),
    ])
    def test_bad_key_is_named(self, mutate, named_key):
        raw = minimal()
        mutate(raw)
        with pytest.raises(SpecError) as excinfo:
            parse_spec(raw)
        assert named_key in str(excinfo.value)

    @pytest.mark.parametrize("sweep_key, value", [
        ("workloads", []),
        ("instructions", []),
        ("seeds", []),
        ("engines", []),
    ])
    def test_empty_axis_rejected(self, sweep_key, value):
        with pytest.raises(SpecError, match=sweep_key):
            parse_spec(minimal(**{sweep_key: value}))

    def test_zip_length_mismatch_names_axes(self):
        raw = minimal(mode="zip", seeds=[1, 2, 3],
                      workloads=["dss-qry2", "web-zeus"])
        with pytest.raises(SpecError) as excinfo:
            parse_spec(raw)
        message = str(excinfo.value)
        assert "zip" in message
        assert "seeds=3" in message and "workloads=2" in message

    def test_engine_param_zip_mismatch(self):
        raw = minimal(engines=[{
            "name": "pif",
            "params": {"mode": "zip", "sab_count": [1, 2],
                       "sab_window_regions": [3, 5, 7]},
        }])
        with pytest.raises(SpecError, match="zip"):
            parse_spec(raw)

    def test_unknown_engine_named(self):
        with pytest.raises(SpecError, match="boomerang"):
            parse_spec(minimal(engines=["boomerang"]))

    def test_unknown_engine_param_named(self):
        raw = minimal(engines=[{"name": "pif",
                                "params": {"sab_windw": [3]}}])
        with pytest.raises(SpecError, match="sab_windw"):
            parse_spec(raw)

    def test_non_scalar_param_value_named(self):
        # YAML can produce dates, nested lists, null — anything that is
        # not a JSON scalar must fail at parse time naming the key, not
        # as a TypeError from the hash encoder.
        import datetime

        raw = minimal(engines=[{
            "name": "pif",
            "params": {"sab_count": [datetime.date(2020, 1, 1)]}}])
        with pytest.raises(SpecError, match="sab_count"):
            parse_spec(raw)
        raw = minimal(engines=[{"name": "pif",
                                "params": {"sab_count": [[1, 2]]}}])
        with pytest.raises(SpecError, match="sab_count"):
            parse_spec(raw)

    def test_out_of_range_param_value_fails_at_parse_time(self):
        # Constructor-rejected values (degree: 0) must surface as a
        # SpecError naming the entry, not a mid-sweep worker traceback.
        raw = minimal(engines=[{"name": "next-line",
                                "params": {"degree": 0}}])
        with pytest.raises(SpecError, match=r"engines\[0\]"):
            parse_spec(raw)
        raw = minimal(engines=[{"name": "pif",
                                "params": {"sab_count": -1}}])
        with pytest.raises(SpecError, match="SAB"):
            parse_spec(raw)

    def test_param_engine_mismatch_named(self):
        raw = minimal(engines=[{"name": "next-line",
                                "params": {"sab_count": [1]}}])
        with pytest.raises(SpecError, match="sab_count"):
            parse_spec(raw)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(SpecError, match="duplicate"):
            parse_spec(minimal(engines=["next-line", "next-line"]))

    def test_label_template_unknown_field(self):
        raw = minimal(engines=[{"name": "pif", "label": "{nope}",
                                "params": {"sab_count": [1]}}])
        with pytest.raises(SpecError, match="nope"):
            parse_spec(raw)

    def test_invalid_cache_geometry_names_cache(self):
        # 32 KB is not a whole number of 64 B x 3-way sets.
        with pytest.raises(SpecError, match="sweep.cache"):
            parse_spec(minimal(cache={"kb": 32, "assoc": 3, "line": 64}))


class TestExpansion:
    def test_product_counts_and_order(self):
        spec = parse_spec(minimal(
            workloads=["dss-qry2", "web-zeus"],
            seeds=[1, 2],
            cores=2,
            cache={"kb": [16, 32]},
            engines=["next-line", "tifs"],
        ))
        points = spec.points()
        assert len(points) == 2 * 2 * 2 * 2 * 2
        # Engines innermost (lanes of one trace are consecutive), then
        # cores, then the scalar axes outermost-first.
        assert [p.label for p in points[:4]] == ["next-line", "tifs"] * 2
        assert points[0].core == 0 and points[2].core == 1
        assert points[0].workload == points[15].workload == "dss-qry2"
        assert points[16].workload == "web-zeus"

    def test_zip_broadcasts_scalars(self):
        spec = parse_spec(minimal(
            mode="zip",
            workloads=["dss-qry2", "web-zeus"],
            instructions=[30_000, 60_000],
            seeds=7,
        ))
        points = spec.points()
        assert len(points) == 2
        assert (points[0].workload, points[0].instructions,
                points[0].seed) == ("dss-qry2", 30_000, 7)
        assert (points[1].workload, points[1].instructions,
                points[1].seed) == ("web-zeus", 60_000, 7)

    def test_engine_param_grids_product(self):
        spec = parse_spec(minimal(engines=[{
            "name": "pif",
            "params": {"sab_count": [1, 4], "sab_window_regions": [3, 7]},
        }]))
        labels = spec.labels()
        assert len(labels) == 4
        assert "pif[sab_count=1,sab_window_regions=3]" in labels

    def test_engine_label_template(self):
        spec = parse_spec(minimal(engines=[{
            "name": "pif",
            "label": "{sab_count}x{sab_window_regions}",
            "params": {"mode": "zip", "sab_count": [1, 4],
                       "sab_window_regions": [3, 3]},
        }]))
        assert spec.labels() == ["1x3", "4x3"]

    def test_duplicate_points_rejected(self):
        # Distinct labels, identical identity: the expansion must refuse
        # rather than let one stored record satisfy two columns.
        raw = minimal(engines=[
            {"name": "pif", "label": "a", "params": {"sab_count": 1}},
            {"name": "pif", "label": "b", "params": {"sab_count": 1}},
        ])
        with pytest.raises(SpecError, match="duplicate"):
            parse_spec(raw).points()

    def test_defaults_fill_in(self):
        point = parse_spec(minimal()).points()[0]
        assert point.seed == 42
        assert point.warmup == 0.4
        assert (point.capacity_bytes, point.associativity,
                point.block_bytes, point.replacement) == (
            32 * 1024, 2, 64, "lru")
        assert point.timing is False


class TestPointHash:
    def _point(self, **overrides):
        base = dict(workload="oltp-db2", instructions=100_000, seed=42,
                    core=0, warmup=0.4, capacity_bytes=32_768,
                    associativity=2, block_bytes=64, replacement="lru",
                    engine="pif",
                    params=(("sab_count", 4), ("sab_window_regions", 3)),
                    label="anything", timing=False)
        base.update(overrides)
        return SweepPoint(**base)

    def test_hash_is_stable_golden(self):
        # The hash keys the on-disk results store: a change here orphans
        # every stored sweep.  If this fails you changed the identity
        # encoding — bump deliberately and say so in DESIGN.md.
        assert point_hash(self._point()) == (
            "3a2b804a4379aa818c9312e99d4c469ec7928604"
            "da4ed2471a802c9ccfb2c41e")
        assert point_hash(self._point(
            workload="dss-qry2", instructions=30_000, seed=3, core=1,
            warmup=0.25, capacity_bytes=16_384, associativity=4,
            replacement="fifo", engine="next-line", params=(),
            label="nl", timing=True)) == (
            "309a91311b8446a351b683f8a22b17f91a805871"
            "355bfb80bb513cd52c7d8dc3")

    def test_label_excluded_from_identity(self):
        assert point_hash(self._point(label="a")) == point_hash(
            self._point(label="b"))

    def test_every_identity_field_changes_hash(self):
        base = point_hash(self._point())
        for overrides in (
                {"workload": "web-zeus"}, {"instructions": 1},
                {"seed": 1}, {"core": 1}, {"warmup": 0.1},
                {"capacity_bytes": 1024}, {"associativity": 1},
                {"block_bytes": 32}, {"replacement": "fifo"},
                {"engine": "tifs", "params": ()},
                {"params": (("sab_count", 8), ("sab_window_regions", 3))},
                {"timing": True}):
            assert point_hash(self._point(**overrides)) != base, overrides


class TestEngineRegistry:
    def test_registries_cover_the_same_engines_both_ways(self):
        """One source of truth: scenarios must accept exactly the
        factory's names (so a newly added engine cannot silently be
        unusable in sweeps), and the CLI's compare list must be the
        factory's names minus the ablation-only variant."""
        from repro.cli import ENGINE_NAMES as CLI_ENGINE_NAMES
        from repro.prefetch import PREFETCHER_NAMES
        from repro.scenarios.engines import ENGINE_PARAMS

        assert set(ENGINE_PARAMS) == set(PREFETCHER_NAMES)
        assert set(CLI_ENGINE_NAMES) == (
            set(PREFETCHER_NAMES) - {"pif-no-tlsep"})

    def test_every_scenario_engine_is_a_compare_engine(self):
        """A bare engine name in a scenario delegates to
        make_prefetcher, so every name must construct and match the
        factory's engine class."""
        from repro.prefetch import make_prefetcher
        from repro.scenarios.engines import ENGINE_PARAMS, build_engine

        for name in ENGINE_PARAMS:
            via_factory = make_prefetcher(name, block_bytes=64)
            via_scenarios = build_engine(name, {}, block_bytes=64)
            assert type(via_scenarios) is type(via_factory), name
            assert via_scenarios.name == via_factory.name

    def test_parameterized_pif_matches_factory_operating_point(self):
        """Paper-default PIF params spell out the same config the
        factory builds, so explicit params cannot drift silently."""
        from repro.prefetch import make_prefetcher
        from repro.scenarios.engines import build_engine

        explicit = build_engine("pif", {"sab_count": 4,
                                        "sab_window_regions": 7},
                                block_bytes=64)
        factory = make_prefetcher("pif", block_bytes=64)
        assert explicit.config == factory.config


class TestFileLoading:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(minimal()))
        spec = load_spec(path)
        assert spec.name == "test"
        # source survives a JSON round trip (what run persists).
        assert parse_spec(spec.source).points() == spec.points()

    def test_yaml_round_trip(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "scenario.yaml"
        path.write_text(
            "name: yam\n"
            "sweep:\n"
            "  workloads: [dss-qry2]\n"
            "  instructions: 30000\n"
            "  engines: [next-line]\n")
        assert load_spec(path).name == "yam"

    def test_sweep_overrides_replace_keys(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(minimal(instructions=1_600_000)))
        spec = load_spec(path, sweep_overrides={"instructions": 30_000,
                                                "cores": 2})
        points = spec.points()
        assert all(p.instructions == 30_000 for p in points)
        assert {p.core for p in points} == {0, 1}

    def test_missing_file_is_spec_error(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_spec(tmp_path / "absent.yaml")

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "scenario.toml"
        path.write_text("x = 1\n")
        with pytest.raises(SpecError, match="toml"):
            load_spec(path)

    def test_checked_in_scenarios_parse(self, repo_root):
        names = {path.name
                 for path in (repo_root / "examples"
                              / "scenarios").glob("*.yaml")}
        assert {"sab-ablation.yaml", "geometry.yaml",
                "seed-sensitivity.yaml", "ci-smoke.yaml"} <= names
        for name in sorted(names):
            spec = load_spec(repo_root / "examples" / "scenarios" / name)
            assert spec.points(), name
