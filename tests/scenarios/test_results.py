"""The append-only JSONL results store: durability and filtering."""

import json

from repro.scenarios.results import ResultsStore, current_generator


def record(digest, generator=None, coverage=0.5):
    return {
        "hash": digest,
        "generator": generator or current_generator(),
        "label": "pif",
        "point": {"workload": "dss-qry2"},
        "metrics": {"coverage": coverage},
    }


class TestResultsStore:
    def test_append_load_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "out")
        store.append(record("a" * 64))
        store.append_all([record("b" * 64), record("c" * 64)])
        loaded = store.load()
        assert set(loaded) == {"a" * 64, "b" * 64, "c" * 64}
        assert loaded["b" * 64]["metrics"]["coverage"] == 0.5

    def test_newest_record_wins(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append(record("a" * 64, coverage=0.1))
        store.append(record("a" * 64, coverage=0.9))
        assert store.load()["a" * 64]["metrics"]["coverage"] == 0.9

    def test_truncated_tail_is_skipped(self, tmp_path):
        # A killed run leaves at most one partial trailing line; load
        # must drop it (the point is simply recomputed on resume).
        store = ResultsStore(tmp_path)
        store.append(record("a" * 64))
        store.append(record("b" * 64))
        text = store.records_path.read_text()
        store.records_path.write_text(text[:-25])
        loaded = store.load()
        assert "a" * 64 in loaded
        assert "b" * 64 not in loaded

    def test_non_dict_json_lines_are_skipped(self, tmp_path):
        # Valid JSON that is not an object (null, arrays, bare numbers)
        # must be tolerated like any other corrupt line, not crash load.
        store = ResultsStore(tmp_path)
        store.append(record("a" * 64))
        with open(store.records_path, "a") as handle:
            handle.write("null\n[]\n42\n\"text\"\n{\"hash\": 7}\n")
        assert set(store.load()) == {"a" * 64}

    def test_load_current_filters_stale_generators(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append(record("a" * 64, generator="0" * 12))
        store.append(record("b" * 64))
        assert set(store.load()) == {"a" * 64, "b" * 64}
        assert set(store.load_current()) == {"b" * 64}

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultsStore(tmp_path / "nowhere").load() == {}

    def test_merge_all_skips_exact_duplicates(self, tmp_path):
        store = ResultsStore(tmp_path)
        first = record("a" * 64)
        assert store.merge_all([first]) == 1
        # The replayed copy (byte-identical — the duplicate-lease race)
        # is dropped; the file does not grow.
        size = store.records_path.stat().st_size
        assert store.merge_all([dict(first)]) == 0
        assert store.records_path.stat().st_size == size
        assert store.merge_all([]) == 0

    def test_merge_all_appends_differing_records_newest_wins(
            self, tmp_path):
        store = ResultsStore(tmp_path)
        store.merge_all([record("a" * 64, coverage=0.1)])
        # A record that differs (a success superseding a quarantine,
        # say) is appended and wins by newest-wins.
        assert store.merge_all([record("a" * 64, coverage=0.9)]) == 1
        assert store.load()["a" * 64]["metrics"]["coverage"] == 0.9

    def test_duplicate_lease_race_converges_without_duplicates(
            self, tmp_path):
        """The coverage the distributed tier leans on: two writers hold
        (what they believe to be) a lease on the same group and report
        the same points.  Interleave their merges deterministically in
        every order — both directions must converge to one final
        record per point, with the store's *current* view identical
        regardless of who won the race."""
        records = [record("a" * 64), record("b" * 64)]
        worker_a = [dict(entry) for entry in records]
        worker_b = [dict(entry) for entry in records]

        interleavings = [
            ("a-then-b", [worker_a, worker_b]),
            ("b-then-a", [worker_b, worker_a]),
        ]
        views = []
        for label, order in interleavings:
            store = ResultsStore(tmp_path / label)
            appended = [store.merge_all(batch) for batch in order]
            # The loser's replay appends nothing.
            assert appended == [2, 0]
            loaded = store.load()
            assert sorted(loaded) == ["a" * 64, "b" * 64]
            # No duplicate final records: one line per point on disk.
            lines = [line for line
                     in store.records_path.read_text().splitlines()
                     if line.strip()]
            assert len(lines) == 2
            views.append(loaded)
        assert views[0] == views[1]

    def test_interleaved_point_level_race_converges(self, tmp_path):
        """Finer interleaving: the two writers alternate point by
        point (a, b, a, b).  Each point lands exactly once."""
        store = ResultsStore(tmp_path)
        a_records = [record("a" * 64), record("b" * 64)]
        b_records = [dict(entry) for entry in a_records]
        appended = [
            store.merge_all([a_records[0]]),
            store.merge_all([b_records[0]]),
            store.merge_all([a_records[1]]),
            store.merge_all([b_records[1]]),
        ]
        assert appended == [1, 0, 1, 0]
        lines = store.records_path.read_text().splitlines()
        assert len([line for line in lines if line.strip()]) == 2
        assert set(store.load()) == {"a" * 64, "b" * 64}

    def test_scenario_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path)
        raw = {"name": "x", "sweep": {"instructions": 1}}
        store.write_scenario(raw)
        assert store.load_scenario() == raw
        # Overwrite is atomic-replace, no stale scratch file left.
        store.write_scenario({"name": "y"})
        assert store.load_scenario() == {"name": "y"}
        assert json.loads(store.scenario_path.read_text()) == {"name": "y"}
        assert not store.scenario_path.with_suffix(".json.tmp").exists()
