"""The append-only JSONL results store: durability and filtering."""

import json

from repro.scenarios.results import ResultsStore, current_generator


def record(digest, generator=None, coverage=0.5):
    return {
        "hash": digest,
        "generator": generator or current_generator(),
        "label": "pif",
        "point": {"workload": "dss-qry2"},
        "metrics": {"coverage": coverage},
    }


class TestResultsStore:
    def test_append_load_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "out")
        store.append(record("a" * 64))
        store.append_all([record("b" * 64), record("c" * 64)])
        loaded = store.load()
        assert set(loaded) == {"a" * 64, "b" * 64, "c" * 64}
        assert loaded["b" * 64]["metrics"]["coverage"] == 0.5

    def test_newest_record_wins(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append(record("a" * 64, coverage=0.1))
        store.append(record("a" * 64, coverage=0.9))
        assert store.load()["a" * 64]["metrics"]["coverage"] == 0.9

    def test_truncated_tail_is_skipped(self, tmp_path):
        # A killed run leaves at most one partial trailing line; load
        # must drop it (the point is simply recomputed on resume).
        store = ResultsStore(tmp_path)
        store.append(record("a" * 64))
        store.append(record("b" * 64))
        text = store.records_path.read_text()
        store.records_path.write_text(text[:-25])
        loaded = store.load()
        assert "a" * 64 in loaded
        assert "b" * 64 not in loaded

    def test_non_dict_json_lines_are_skipped(self, tmp_path):
        # Valid JSON that is not an object (null, arrays, bare numbers)
        # must be tolerated like any other corrupt line, not crash load.
        store = ResultsStore(tmp_path)
        store.append(record("a" * 64))
        with open(store.records_path, "a") as handle:
            handle.write("null\n[]\n42\n\"text\"\n{\"hash\": 7}\n")
        assert set(store.load()) == {"a" * 64}

    def test_load_current_filters_stale_generators(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append(record("a" * 64, generator="0" * 12))
        store.append(record("b" * 64))
        assert set(store.load()) == {"a" * 64, "b" * 64}
        assert set(store.load_current()) == {"b" * 64}

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultsStore(tmp_path / "nowhere").load() == {}

    def test_scenario_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path)
        raw = {"name": "x", "sweep": {"instructions": 1}}
        store.write_scenario(raw)
        assert store.load_scenario() == raw
        # Overwrite is atomic-replace, no stale scratch file left.
        store.write_scenario({"name": "y"})
        assert store.load_scenario() == {"name": "y"}
        assert json.loads(store.scenario_path.read_text()) == {"name": "y"}
        assert not store.scenario_path.with_suffix(".json.tmp").exists()
