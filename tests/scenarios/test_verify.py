"""``repro sweep verify``: the store fsck and its repair contract."""

import hashlib
import json

import pytest

from repro.cli import main
from repro.scenarios import (ResultsStore, parse_spec, run_sweep,
                             verify_store)
from repro.scenarios.results import BaselineSidecar

#: One point, one trace group — the cheapest possible store to fsck.
TINY = {
    "name": "tiny",
    "sweep": {"workloads": ["dss-qry2"], "instructions": 30_000,
              "seeds": 3, "cache": {"kb": 16}, "engines": ["next-line"]},
}

quiet = {"log": lambda line: None}


def spec():
    return parse_spec(TINY)


@pytest.fixture()
def swept(tmp_path):
    """A completed tiny sweep directory plus its parsed record."""
    out = tmp_path / "out"
    summary = run_sweep(spec(), out, **quiet)
    assert summary.complete()
    line = ResultsStore(out).records_path.read_text().strip()
    return out, json.loads(line)


def canonical(record):
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def append_line(out, text):
    with open(ResultsStore(out).records_path, "a", encoding="utf-8") as fh:
        fh.write(text + "\n")


def kinds(report, severity=None):
    return [finding.kind for finding in report.findings
            if severity is None or finding.severity == severity]


class TestFindings:
    def test_clean_store_is_clean(self, swept):
        out, _ = swept
        report = verify_store(spec(), out)
        assert report.clean() and report.findings == []
        assert report.checked["records"] == 1

    def test_torn_trailing_line_is_an_error(self, swept):
        out, record = swept
        append_line(out, canonical(record)[:-9])  # sheared mid-record
        report = verify_store(spec(), out)
        assert kinds(report, "error") == ["bad-record"]

    def test_missing_envelope_fields_reported(self, swept):
        out, _ = swept
        append_line(out, json.dumps({"hash": "x", "metrics": {}}))
        report = verify_store(spec(), out)
        assert kinds(report, "error") == ["bad-record"]
        assert "lacks fields" in report.findings[0].detail

    def test_both_payloads_rejected(self, swept):
        out, record = swept
        broken = dict(record)
        broken["failed"] = {"attempts": 1}  # metrics AND failed
        append_line(out, canonical(broken))
        report = verify_store(spec(), out)
        assert kinds(report, "error") == ["bad-record"]

    def test_hash_mismatch_is_an_error(self, swept):
        out, record = swept
        tampered = dict(record)
        tampered["hash"] = "0" * 64
        append_line(out, canonical(tampered))
        report = verify_store(spec(), out)
        assert kinds(report, "error") == ["hash-mismatch"]

    def test_foreign_and_stale_records_are_notes(self, swept):
        out, record = swept
        foreign = dict(record)
        foreign["point"] = dict(record["point"], seed=99)
        foreign["hash"] = hashlib.sha256(
            canonical(foreign["point"]).encode()).hexdigest()
        append_line(out, canonical(foreign))
        stale = dict(record)
        stale["generator"] = "deadbeefdead"
        append_line(out, canonical(stale))
        report = verify_store(spec(), out)
        assert report.clean()  # notes, not errors
        assert sorted(kinds(report)) == ["foreign-record", "stale-record"]

    def test_quarantined_record_is_an_error(self, swept):
        out, record = swept
        failed = {key: value for key, value in record.items()
                  if key != "metrics"}
        failed["failed"] = {"attempts": 3, "kind": "error",
                            "error": "InjectedFault: injected"}
        append_line(out, canonical(failed))
        report = verify_store(spec(), out)
        assert kinds(report, "error") == ["quarantined"]
        assert "3 attempts" in report.errors()[0].detail

    def test_superseded_quarantine_is_not_an_error(self, swept):
        """The rerun-retries-quarantine flow: a failure followed by a
        newer success for the same point must verify clean."""
        out, record = swept
        failed = {key: value for key, value in record.items()
                  if key != "metrics"}
        failed["failed"] = {"attempts": 3, "kind": "error", "error": "x"}
        append_line(out, canonical(failed))
        append_line(out, canonical(record))  # success supersedes
        assert verify_store(spec(), out).clean()

    def test_damaged_sidecar_line_reported(self, swept):
        out, _ = swept
        sidecar = BaselineSidecar(out)
        with open(sidecar.path, "a", encoding="utf-8") as fh:
            fh.write('{"key": 42, "baseline": []}\n')
        report = verify_store(spec(), out)
        assert kinds(report, "error") == ["bad-baseline"]


class TestRepair:
    def test_repair_canonicalizes_and_rerun_is_a_noop(self, swept):
        out, record = swept
        append_line(out, canonical(record)[:-9])       # torn tail
        stale = dict(record)
        stale["generator"] = "deadbeefdead"
        append_line(out, canonical(stale))
        before = verify_store(spec(), out, repair=True)
        assert before.repaired
        after = verify_store(spec(), out)
        assert after.clean() and after.findings == []
        # The surviving success means the rerun recomputes nothing.
        summary = run_sweep(spec(), out, **quiet)
        assert (summary.skipped, summary.computed) == (1, 0)

    def test_repair_drops_quarantined_records_for_recompute(self, swept):
        out, record = swept
        store = ResultsStore(out)
        failed = {key: value for key, value in record.items()
                  if key != "metrics"}
        failed["failed"] = {"attempts": 3, "kind": "error", "error": "x"}
        append_line(out, canonical(failed))  # newest-wins: quarantined
        verify_store(spec(), out, repair=True)
        assert store.records_path.read_text() == ""  # nothing survived
        summary = run_sweep(spec(), out, **quiet)
        assert summary.computed == 1

    def test_repair_drops_damaged_sidecar_lines(self, swept):
        out, _ = swept
        sidecar = BaselineSidecar(out)
        good = len(sidecar.load())
        with open(sidecar.path, "a", encoding="utf-8") as fh:
            fh.write("{torn\n")
        verify_store(spec(), out, repair=True)
        assert len(sidecar.load()) == good
        assert "{torn" not in sidecar.path.read_text()

    def test_repair_deletes_corrupt_plan_cache(self, tmp_path):
        from repro.sim.trainplan import PLANS_DIR
        from repro.trace.store import TraceStore

        store = TraceStore.from_env()
        if store is None:
            pytest.skip("trace store disabled")
        plans = store.root / PLANS_DIR
        plans.mkdir(parents=True, exist_ok=True)
        bogus = plans / ("0" * 24 + "-test-corrupt.npz")
        bogus.write_bytes(b"not an npz archive")
        try:
            report = verify_store(None, tmp_path / "empty")
            assert "bad-plan" in kinds(report, "error")
            repaired = verify_store(None, tmp_path / "empty", repair=True)
            assert any("deleted corrupt plan" in action
                       for action in repaired.repaired)
            assert not bogus.exists()
        finally:
            bogus.unlink(missing_ok=True)


class TestCli:
    def test_exit_codes_and_json(self, swept, capsys):
        out, record = swept
        assert main(["sweep", "verify", "--out", str(out)]) == 0
        capsys.readouterr()

        append_line(out, canonical(record)[:-9])
        code = main(["sweep", "verify", "--out", str(out),
                     "--format", "json"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is False
        assert [finding["kind"] for finding in doc["findings"]] \
            == ["bad-record"]

        assert main(["sweep", "verify", "--out", str(out),
                     "--repair"]) == 1  # reports what it repaired
        capsys.readouterr()
        assert main(["sweep", "verify", "--out", str(out)]) == 0

    def test_verify_without_scenario_still_checks_shape(self, tmp_path,
                                                        capsys):
        out = tmp_path / "bare"
        out.mkdir()
        (out / "results.jsonl").write_text("{torn\n")
        assert main(["sweep", "verify", "--out", str(out)]) == 1
        assert "bad-record" in capsys.readouterr().out
