"""Configuration dataclass validation and Table I defaults."""

import pytest

from repro.common.config import (
    BranchPredictorConfig,
    CacheConfig,
    MemoryConfig,
    PAPER_PIF,
    PAPER_SYSTEM,
    PIFConfig,
    PipelineConfig,
    SystemConfig,
)


class TestCacheConfig:
    def test_table1_l1i_defaults(self):
        config = CacheConfig()
        assert config.capacity_bytes == 64 * 1024
        assert config.associativity == 2
        assert config.block_bytes == 64
        assert config.hit_latency == 2
        assert config.n_blocks == 1024
        assert config.n_sets == 512

    def test_rejects_fractional_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=1000, associativity=3)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ValueError):
            CacheConfig(replacement="plru")

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            CacheConfig(block_bytes=48)


class TestBranchPredictorConfig:
    def test_table1_defaults(self):
        config = BranchPredictorConfig()
        assert config.gshare_entries == 16 * 1024
        assert config.bimodal_entries == 16 * 1024

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(gshare_entries=1000)

    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(history_bits=0)


class TestPipelineConfig:
    def test_table1_defaults(self):
        config = PipelineConfig()
        assert config.retire_width == 3
        assert config.rob_entries == 96
        assert config.fetch_queue_entries == 24

    def test_rejects_inverted_latency_range(self):
        with pytest.raises(ValueError):
            PipelineConfig(min_resolve_latency=10, max_resolve_latency=5)


class TestMemoryConfig:
    def test_expected_fill_latency_interpolates(self):
        config = MemoryConfig(l2_hit_latency=10, memory_latency=100,
                              l2_miss_rate=0.5)
        assert config.expected_fill_latency() == pytest.approx(55.0)

    def test_rejects_bad_miss_rate(self):
        with pytest.raises(ValueError):
            MemoryConfig(l2_miss_rate=1.5)


class TestSystemConfig:
    def test_sixteen_cores(self):
        assert SystemConfig().cores == 16

    def test_describe_is_flat_and_serializable(self):
        import json

        description = PAPER_SYSTEM.describe()
        assert json.dumps(description)
        assert description["cores"] == 16


class TestPIFConfig:
    def test_paper_operating_point(self):
        assert PAPER_PIF.geometry.total_blocks == 8
        assert PAPER_PIF.temporal_compactor_entries == 4
        assert PAPER_PIF.history_entries == 32 * 1024
        assert PAPER_PIF.sab_count == 4
        assert PAPER_PIF.sab_window_regions == 7

    def test_zero_temporal_compactor_is_legal(self):
        assert PIFConfig(temporal_compactor_entries=0)

    def test_rejects_indivisible_index(self):
        with pytest.raises(ValueError):
            PIFConfig(index_entries=100, index_associativity=8)

    def test_rejects_empty_history(self):
        with pytest.raises(ValueError):
            PIFConfig(history_entries=0)
