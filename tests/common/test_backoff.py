"""Shared retry backoff: capped-exponential growth, deterministic jitter."""

import pytest

from repro.common.backoff import JITTER_SPREAD, backoff_delay


class TestSchedule:
    def test_grows_exponentially_until_the_cap(self):
        delays = [backoff_delay(attempt, base=0.1, cap=1000.0, salt="w0")
                  for attempt in range(8)]
        for earlier, later in zip(delays, delays[1:]):
            assert later > earlier
        # Jitter is bounded, so consecutive delays keep (roughly)
        # doubling: the ratio stays within the jitter envelope.
        for earlier, later in zip(delays, delays[1:]):
            assert 2.0 / (1.0 + JITTER_SPREAD) <= later / earlier \
                <= 2.0 * (1.0 + JITTER_SPREAD)

    def test_never_exceeds_the_cap(self):
        for attempt in range(40):
            assert backoff_delay(attempt, base=0.5, cap=3.0,
                                 salt="x") <= 3.0

    def test_jitter_bounds(self):
        for attempt in range(10):
            bare = 0.05 * (2.0 ** attempt)
            delay = backoff_delay(attempt, base=0.05, cap=1e9,
                                  salt=f"s{attempt}")
            assert bare <= delay <= bare * (1.0 + JITTER_SPREAD)

    def test_deterministic_for_same_inputs(self):
        assert backoff_delay(3, base=0.1, salt="worker-7") \
            == backoff_delay(3, base=0.1, salt="worker-7")

    def test_salt_decorrelates_workers(self):
        """Different worker identities must not retry in lockstep:
        at least one attempt in a short schedule differs."""
        a = [backoff_delay(n, base=0.1, salt="w0") for n in range(6)]
        b = [backoff_delay(n, base=0.1, salt="w1") for n in range(6)]
        assert a != b

    @pytest.mark.parametrize("kwargs", [
        {"attempt": -1, "base": 0.1},
        {"attempt": 0, "base": 0.0},
        {"attempt": 0, "base": -1.0},
        {"attempt": 0, "base": 0.1, "cap": 0.0},
    ])
    def test_invalid_arguments_raise(self, kwargs):
        attempt = kwargs.pop("attempt")
        with pytest.raises(ValueError):
            backoff_delay(attempt, **kwargs)
