"""Address and region-geometry arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addressing import (
    INSTRUCTION_BYTES,
    PAPER_GEOMETRY,
    RegionGeometry,
    block_base_pc,
    block_bits_for,
    block_of,
    blocks_spanned,
)


class TestBlockMath:
    def test_block_bits_for_common_sizes(self):
        assert block_bits_for(64) == 6
        assert block_bits_for(32) == 5
        assert block_bits_for(128) == 7

    @pytest.mark.parametrize("bad", [0, -1, 3, 48, 65])
    def test_block_bits_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            block_bits_for(bad)

    def test_block_of_boundaries(self):
        assert block_of(0) == 0
        assert block_of(63) == 0
        assert block_of(64) == 1
        assert block_of(127) == 1

    def test_block_of_rejects_negative(self):
        with pytest.raises(ValueError):
            block_of(-4)

    def test_block_base_pc_inverts_block_of(self):
        for pc in (0, 64, 4096, 0x40_0000):
            assert block_base_pc(block_of(pc)) == pc - (pc % 64)

    @given(st.integers(min_value=0, max_value=1 << 48))
    def test_block_of_base_within_block(self, pc):
        base = block_base_pc(block_of(pc))
        assert base <= pc < base + 64

    def test_blocks_spanned_single_block(self):
        assert blocks_spanned(0, 16) == 1

    def test_blocks_spanned_crosses_boundary(self):
        # 15 instructions starting 8 bytes before a block boundary.
        assert blocks_spanned(64 - 8, 15) == 2

    def test_blocks_spanned_zero_instructions(self):
        assert blocks_spanned(100, 0) == 0

    @given(st.integers(min_value=0, max_value=1 << 32),
           st.integers(min_value=1, max_value=512))
    def test_blocks_spanned_matches_enumeration(self, pc, count):
        expected = len({
            block_of(pc + i * INSTRUCTION_BYTES) for i in range(count)
        })
        assert blocks_spanned(pc, count) == expected


class TestRegionGeometry:
    def test_paper_geometry_shape(self):
        assert PAPER_GEOMETRY.preceding == 2
        assert PAPER_GEOMETRY.succeeding == 5
        assert PAPER_GEOMETRY.total_blocks == 8

    def test_rejects_negative_extents(self):
        with pytest.raises(ValueError):
            RegionGeometry(preceding=-1)

    def test_contains_offset(self):
        geometry = RegionGeometry(2, 5)
        assert geometry.contains_offset(0)
        assert geometry.contains_offset(-2)
        assert geometry.contains_offset(5)
        assert not geometry.contains_offset(-3)
        assert not geometry.contains_offset(6)

    def test_contains_blocks(self):
        geometry = RegionGeometry(1, 2)
        assert geometry.contains(99, trigger_block=100)
        assert geometry.contains(102, trigger_block=100)
        assert not geometry.contains(98, trigger_block=100)

    def test_bit_index_layout_matches_paper(self):
        # Left part of the vector = preceding blocks, then succeeding.
        geometry = RegionGeometry(2, 5)
        assert geometry.bit_index(-2) == 0
        assert geometry.bit_index(-1) == 1
        assert geometry.bit_index(1) == 2
        assert geometry.bit_index(5) == 6

    def test_trigger_has_no_bit(self):
        with pytest.raises(ValueError):
            RegionGeometry(2, 5).bit_index(0)

    def test_bit_index_out_of_region(self):
        with pytest.raises(ValueError):
            RegionGeometry(2, 5).bit_index(6)

    @given(st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=10))
    def test_bit_index_roundtrip(self, preceding, succeeding):
        geometry = RegionGeometry(preceding, succeeding)
        for index in range(preceding + succeeding):
            offset = geometry.offset_for_bit(index)
            assert geometry.bit_index(offset) == index
            assert offset != 0

    def test_offsets_replay_order(self):
        geometry = RegionGeometry(2, 3)
        assert list(geometry.offsets()) == [-2, -1, 1, 2, 3]

    def test_degenerate_single_block_region(self):
        geometry = RegionGeometry(0, 0)
        assert geometry.total_blocks == 1
        assert list(geometry.offsets()) == []
