"""LRU container semantics, including a model-based property test."""

from collections import OrderedDict

from hypothesis import given, strategies as st

from repro.common.lru import LRUCache, LRUSet


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        evicted = cache.put("c", 3)
        assert evicted == ("a", 1)
        assert "a" not in cache

    def test_get_promotes(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        evicted = cache.put("c", 3)
        assert evicted == ("b", 2)

    def test_peek_does_not_promote(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")
        evicted = cache.put("c", 3)
        assert evicted == ("a", 1)

    def test_update_existing_promotes(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 10) is None
        assert cache.put("c", 3) == ("b", 2)
        assert cache.get("a") == 10

    def test_zero_capacity_stores_nothing(self):
        cache = LRUCache(0)
        assert cache.put("a", 1) == ("a", 1)
        assert len(cache) == 0

    def test_lru_mru_keys(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        assert cache.lru_key() == "a"
        assert cache.mru_key() == "c"
        assert LRUCache(1).lru_key() is None

    def test_discard(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.discard("a")
        assert not cache.discard("a")

    def test_items_mru_first(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        assert [k for k, _ in cache.items_mru_first()] == ["c", "b", "a"]

    @given(st.lists(st.tuples(st.sampled_from("abcdefg"),
                              st.booleans()), max_size=200),
           st.integers(min_value=1, max_value=4))
    def test_against_ordered_dict_model(self, operations, capacity):
        cache = LRUCache(capacity)
        model: OrderedDict = OrderedDict()
        for key, is_put in operations:
            if is_put:
                cache.put(key, key)
                if key in model:
                    model.move_to_end(key)
                model[key] = key
                while len(model) > capacity:
                    model.popitem(last=False)
            else:
                got = cache.get(key)
                if key in model:
                    model.move_to_end(key)
                    assert got == key
                else:
                    assert got is None
        assert list(model) == [
            k for k, _ in reversed(list(cache.items_mru_first()))]


class TestLRUSet:
    def test_add_and_membership(self):
        members = LRUSet(2)
        members.add("x")
        assert "x" in members
        assert "y" not in members

    def test_eviction(self):
        members = LRUSet(2)
        members.add("x")
        members.add("y")
        assert members.add("z") == "x"

    def test_touch(self):
        members = LRUSet(2)
        members.add("x")
        members.add("y")
        assert members.touch("x")
        assert members.add("z") == "y"
        assert not members.touch("missing")

    def test_members_mru_first(self):
        members = LRUSet(3)
        for key in "abc":
            members.add(key)
        assert list(members.members_mru_first()) == ["c", "b", "a"]
