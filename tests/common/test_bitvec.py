"""Bit-vector semantics, including the subset test the temporal
compactor relies on."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitvec import BitVector, empty, full


def vectors(width=st.integers(min_value=0, max_value=16)):
    return width.flatmap(
        lambda w: st.integers(min_value=0, max_value=(1 << w) - 1 if w else 0)
        .map(lambda m: BitVector(w, m)))


class TestConstruction:
    def test_empty_and_full(self):
        assert empty(7).popcount() == 0
        assert full(7).popcount() == 7

    def test_rejects_mask_beyond_width(self):
        with pytest.raises(ValueError):
            BitVector(3, 0b1000)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BitVector(-1, 0)
        with pytest.raises(ValueError):
            BitVector(3, -1)

    def test_from_bits(self):
        vector = BitVector.from_bits(5, [0, 3])
        assert vector.test(0) and vector.test(3)
        assert not vector.test(1)

    def test_from_bits_out_of_range(self):
        with pytest.raises(ValueError):
            BitVector.from_bits(3, [3])

    def test_from_string_paper_notation(self):
        # Figure 5 writes PCA(101): leftmost char is bit 0.
        vector = BitVector.from_string("101")
        assert vector.test(0) and not vector.test(1) and vector.test(2)

    def test_from_string_rejects_junk(self):
        with pytest.raises(ValueError):
            BitVector.from_string("10x")

    def test_str_roundtrip(self):
        for text in ("", "0", "1", "10110", "0000001"):
            assert str(BitVector.from_string(text)) == text


class TestOperations:
    def test_set_clear_test(self):
        vector = empty(4).set(2)
        assert vector.test(2)
        assert not vector.clear(2).test(2)

    def test_set_out_of_range(self):
        with pytest.raises(ValueError):
            empty(4).set(4)

    def test_immutability(self):
        vector = empty(4)
        vector.set(1)
        assert vector.is_empty()

    def test_subset(self):
        small = BitVector.from_string("100")
        big = BitVector.from_string("101")
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)
        assert big.is_subset_of(big)

    def test_subset_width_mismatch(self):
        with pytest.raises(ValueError):
            empty(3).is_subset_of(empty(4))

    def test_union_intersection(self):
        a = BitVector.from_string("110")
        b = BitVector.from_string("011")
        assert str(a.union(b)) == "111"
        assert str(a.intersection(b)) == "010"

    def test_set_bits_ascending(self):
        vector = BitVector.from_string("10101")
        assert list(vector.set_bits()) == [0, 2, 4]

    def test_iteration_matches_test(self):
        vector = BitVector.from_string("0110")
        assert list(vector) == [False, True, True, False]

    @given(vectors(), vectors())
    def test_union_is_superset_of_both(self, a, b):
        if a.width != b.width:
            return
        union = a.union(b)
        assert a.is_subset_of(union)
        assert b.is_subset_of(union)

    @given(vectors())
    def test_popcount_matches_set_bits(self, vector):
        assert vector.popcount() == len(list(vector.set_bits()))

    @given(vectors())
    def test_subset_reflexive(self, vector):
        assert vector.is_subset_of(vector)

    @given(vectors())
    def test_str_from_string_roundtrip(self, vector):
        assert BitVector.from_string(str(vector)) == vector
