"""Deterministic RNG derivation."""

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import child_seed, make_rng, weighted_choice


class TestChildSeed:
    def test_deterministic(self):
        assert child_seed(42, "a", "b") == child_seed(42, "a", "b")

    def test_name_sensitivity(self):
        assert child_seed(42, "a") != child_seed(42, "b")

    def test_root_sensitivity(self):
        assert child_seed(1, "a") != child_seed(2, "a")

    def test_path_structure_matters(self):
        # ("ab",) and ("a", "b") must not collide.
        assert child_seed(0, "ab") != child_seed(0, "a", "b")

    @given(st.integers(), st.text(max_size=20))
    def test_fits_64_bits(self, root, name):
        assert 0 <= child_seed(root, name) < 1 << 64


class TestMakeRng:
    def test_independent_streams(self):
        first = make_rng(7, "x")
        second = make_rng(7, "y")
        assert [first.random() for _ in range(4)] != [
            second.random() for _ in range(4)]

    def test_reproducible_streams(self):
        a = make_rng(7, "x")
        b = make_rng(7, "x")
        assert [a.random() for _ in range(8)] == [
            b.random() for _ in range(8)]


class TestWeightedChoice:
    def test_degenerate_single_weight(self):
        rng = make_rng(0, "t")
        assert weighted_choice(rng, [1.0]) == 0

    def test_zero_weight_never_chosen(self):
        rng = make_rng(0, "t")
        picks = {weighted_choice(rng, [0.0, 1.0, 0.0]) for _ in range(100)}
        assert picks == {1}

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0, "t"), [0.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0, "t"), [1.0, -1.0])

    def test_roughly_proportional(self):
        rng = make_rng(3, "prop")
        counts = [0, 0]
        for _ in range(4000):
            counts[weighted_choice(rng, [3.0, 1.0])] += 1
        ratio = counts[0] / counts[1]
        assert 2.0 < ratio < 4.5
