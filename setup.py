"""Legacy setup shim: lets ``pip install -e .`` work offline with old
setuptools (no wheel package available in this environment)."""
from setuptools import setup

setup()
