#!/usr/bin/env python
"""Interrupt study: why trap-level separation matters (Section 2.3).

Sweeps the interrupt rate of a Web workload and measures, per rate:

* the *predictability* gain of separating trap levels (the paper's
  Figure 2 Retire-vs-RetireSep delta, via the stream oracle) — this is
  where handler fragmentation shows up cleanly;
* end-to-end PIF miss coverage with and without separated channels
  (at this reproduction's scale the end-to-end delta is small: the
  merged design trades fragmentation for a larger shared history).
"""

from dataclasses import replace

from repro import CacheConfig, PIFConfig, ProactiveInstructionFetch, generate_trace
from repro.sim import build_view_events, measure_stream_predictability, run_prefetch_simulation
from repro.trace.records import StreamKind
from repro.workloads.spec import get_spec

CACHE = CacheConfig(capacity_bytes=32 * 1024, associativity=2)
PIF = PIFConfig(sab_window_regions=3)

def main() -> None:
    base_spec = get_spec("web-apache")
    print(f"{'irq interval':>14s} {'tl1 share':>10s} "
          f"{'oracle sep-gain':>16s} {'pif':>8s} {'pif-no-sep':>11s}")
    for interval in (16_000, 8_000, 4_000, 2_000):
        spec = replace(base_spec, interrupt_interval=interval)
        bundle = generate_trace(spec, instructions=400_000, seed=7).bundle
        tl1 = sum(1 for r in bundle.retires if r.trap_level == 1)
        share = tl1 / len(bundle.retires)

        views = build_view_events(bundle, CACHE)
        retire = measure_stream_predictability(
            bundle, StreamKind.RETIRE, cache_config=CACHE,
            view_events=views).coverage()
        retire_sep = measure_stream_predictability(
            bundle, StreamKind.RETIRE_SEP, cache_config=CACHE,
            view_events=views).coverage()

        separated = run_prefetch_simulation(
            bundle, ProactiveInstructionFetch(PIF), cache_config=CACHE,
            warmup_fraction=0.4)
        merged = run_prefetch_simulation(
            bundle,
            ProactiveInstructionFetch(PIF, separate_trap_levels=False),
            cache_config=CACHE, warmup_fraction=0.4)
        print(f"{interval:>14,d} {share:>10.1%} "
              f"{retire_sep - retire:>+16.2%} "
              f"{separated.coverage():>8.1%} {merged.coverage():>11.1%}")
    print()
    print("TL1 coverage of the separated design (handler streams replay")
    print("from their own history):")
    spec = replace(base_spec, interrupt_interval=4_000)
    bundle = generate_trace(spec, instructions=400_000, seed=7).bundle
    engine = ProactiveInstructionFetch(PIF)
    result = run_prefetch_simulation(bundle, engine, cache_config=CACHE,
                                     warmup_fraction=0.4)
    for level in sorted(result.per_level_baseline):
        print(f"  TL{level}: coverage {result.level_coverage(level):.1%} "
              f"({result.per_level_baseline[level]} baseline misses)")

if __name__ == "__main__":
    main()
