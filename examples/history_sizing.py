#!/usr/bin/env python
"""History sizing study: how much stream storage does PIF need?

Reproduces the engineering trade-off of Section 5.4 (Figure 9 right) as
a practitioner would use it: sweep the history buffer over a range of
capacities on *your* workload, find the knee, and read off the SRAM
budget.  Also prints the equivalent kilobytes assuming the paper's
record layout (a ~38-bit trigger address plus a 7-bit vector ≈ 6 bytes
per region record).
"""

from repro import CacheConfig
from repro.pipeline.tracegen import cached_trace
from repro.sim import build_view_events, measure_pif_predictability

WORKLOADS = ("oltp-db2", "web-apache", "dss-qry2")
SIZES = (256, 1024, 4096, 16384, 65536)
CACHE = CacheConfig(capacity_bytes=32 * 1024, associativity=2)
BYTES_PER_RECORD = 6

def main() -> None:
    header = f"{'workload':12s}" + "".join(f"{s:>10d}" for s in SIZES)
    print(header + "   (history entries)")
    print(" " * 12 + "".join(
        f"{s * BYTES_PER_RECORD // 1024:>9d}K" for s in SIZES)
        + "   (approx. SRAM)")
    for workload in WORKLOADS:
        bundle = cached_trace(workload, 600_000, 42).bundle
        views = build_view_events(bundle, CACHE)
        row = []
        for size in SIZES:
            oracle = measure_pif_predictability(
                bundle, history_entries=size, cache_config=CACHE,
                view_events=views, warmup_fraction=0.4)
            row.append(oracle.coverage())
        print(f"{workload:12s}" + "".join(f"{c:>10.1%}" for c in row))
    print()
    print("Read the knee: capacity beyond which coverage stops improving.")
    print("The paper settles on 32K regions; at this reproduction's scale")
    print("the knee sits lower because footprints are scaled with the cache.")

if __name__ == "__main__":
    main()
