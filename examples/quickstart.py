#!/usr/bin/env python
"""Quickstart: generate a server trace, attach PIF, measure coverage.

Runs in a few seconds and walks through the library's three core moves:

1. synthesize a server workload trace (OLTP on DB2, scaled down),
2. simulate the L1-I with and without Proactive Instruction Fetch,
3. report miss coverage and the compaction statistics behind it.
"""

from repro import CacheConfig, PIFConfig, ProactiveInstructionFetch, generate_trace
from repro.sim import run_prefetch_simulation

def main() -> None:
    # 1. A trace: 300k instructions of one core running the synthetic
    #    OLTP-DB2 workload.  The bundle holds both the fetch-order
    #    access stream (wrong-path noise included) and the retire-order
    #    stream PIF records from.
    trace = generate_trace("oltp-db2", instructions=300_000, seed=1)
    bundle = trace.bundle
    print(f"workload          : {bundle.workload}")
    print(f"instructions      : {bundle.instructions:,}")
    print(f"touched footprint : {bundle.footprint_blocks() * 64 // 1024} KB")
    print(f"wrong-path fetches: {bundle.wrong_path_fraction():.1%}")
    print(f"branch accuracy   : "
          f"{trace.frontend_stats.conditional_accuracy():.1%}")

    # 2. PIF against a 32 KB 2-way L1-I (the experiment scale; see
    #    DESIGN.md for the scaling rationale).
    cache = CacheConfig(capacity_bytes=32 * 1024, associativity=2)
    pif = ProactiveInstructionFetch(PIFConfig(sab_window_regions=3))
    result = run_prefetch_simulation(bundle, pif, cache_config=cache,
                                     warmup_fraction=0.3)

    # 3. The paper's headline metric: what fraction of the baseline's
    #    correct-path misses did the prefetcher eliminate?
    print()
    print(f"baseline misses   : {result.baseline_misses:,}")
    print(f"remaining misses  : {result.remaining_misses:,}")
    print(f"miss coverage     : {result.coverage():.1%}")
    print(f"prefetches issued : {result.prefetches_issued:,}")
    print(f"prefetch accuracy : {result.cache_stats.prefetch_accuracy():.1%}")
    print(f"loop compaction   : {pif.compaction_ratio(0):.1%} of region "
          f"records discarded by the temporal compactor")

if __name__ == "__main__":
    main()
