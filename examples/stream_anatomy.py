#!/usr/bin/env python
"""Stream anatomy: see the microarchitectural noise the paper describes.

Dissects one OLTP trace the way Section 2 does: compares the statistics
of the miss / access / retire streams, shows spatial-region structure,
and prints a small annotated excerpt of the access stream with its
wrong-path noise — Figure 1 (right), live from the model.
"""

from repro import CacheConfig, generate_trace
from repro.sim import (
    build_view_events,
    density_distribution,
    measure_stream_predictability,
    trigger_offset_profile,
)
from repro.trace.records import StreamKind
from repro.trace.stats import analyze_block_stream, repetition_score

CACHE = CacheConfig(capacity_bytes=32 * 1024, associativity=2)

def main() -> None:
    bundle = generate_trace("oltp-db2", instructions=400_000, seed=3).bundle
    views = build_view_events(bundle, CACHE)

    print("== stream statistics ==")
    streams = {
        "miss": [e.key for e in views.miss],
        "access": [e.key for e in views.access],
        "retire": [e.key for e in views.retire],
    }
    for name, blocks in streams.items():
        stats = analyze_block_stream(blocks)
        print(f"{name:>7s}: length={stats.length:>7,d} "
              f"unique={stats.unique_blocks:>5,d} "
              f"sequential={stats.sequential_fraction:.1%} "
              f"4-gram repetition={repetition_score(blocks):.1%}")

    print()
    print("== predictability (Figure 2 methodology) ==")
    for kind in StreamKind.ALL:
        oracle = measure_stream_predictability(
            bundle, kind, cache_config=CACHE, view_events=views)
        print(f"{kind:>11s}: {oracle.coverage():.1%} of correct-path misses "
              "predicted")

    print()
    print("== spatial-region structure (Section 3) ==")
    density = density_distribution(bundle.retires)
    print("blocks/region:", "  ".join(
        f"{label}:{value:.0%}" for label, value in density.items()))
    profile = trigger_offset_profile(bundle.retires)
    top = sorted(profile.items(), key=lambda kv: -kv[1])[:5]
    print("hottest trigger offsets:", "  ".join(
        f"{offset:+d}:{value:.1%}" for offset, value in top))

    print()
    print("== access-stream excerpt with wrong-path noise ==")
    shown = 0
    for index, access in enumerate(bundle.accesses):
        if access.wrong_path and index > 50:
            for peek in bundle.accesses[index - 3:index + 4]:
                marker = "WRONG PATH" if peek.wrong_path else ""
                tl = f"TL{peek.trap_level}"
                print(f"  block {peek.block:#8x}  {tl}  {marker}")
            break
        shown += 1

if __name__ == "__main__":
    main()
