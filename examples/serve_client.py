#!/usr/bin/env python
"""End-to-end client for the `repro serve` daemon — stdlib only.

Submits a scenario spec over HTTP, polls the job until it finishes
(printing sweep progress), then fetches and prints the report:

    repro serve --data-dir runs/service --port 8642 &
    python examples/serve_client.py --port 8642 \
        examples/scenarios/ci-smoke.yaml

Exit status: 0 when the job reaches `done`, 1 when it fails, 2 for
client-side errors (unreachable daemon, rejected spec).  The full API
this exercises is documented in docs/api.md.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def api(base, method, path, body=None, content_type=None):
    """One API call -> (status, decoded body).  4xx/5xx replies carry a
    JSON error document; surface its message instead of a traceback."""
    request = urllib.request.Request(base + path, data=body, method=method)
    if content_type:
        request.add_header("Content-Type", content_type)
    try:
        with urllib.request.urlopen(request) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as error:
        payload = json.loads(error.read())
        raise SystemExit(
            f"{method} {path} -> {error.code}: {payload['error']}"
        ) from None
    except urllib.error.URLError as error:
        raise SystemExit(f"cannot reach the daemon at {base}: "
                         f"{error.reason}") from None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("spec", help="scenario spec file (YAML or JSON)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument("--format", choices=("markdown", "csv"),
                        default="markdown", help="report flavour")
    parser.add_argument("--poll-seconds", type=float, default=1.0)
    args = parser.parse_args(argv)
    base = f"http://{args.host}:{args.port}"

    with open(args.spec, "rb") as handle:
        body = handle.read()
    content_type = ("application/yaml"
                    if args.spec.endswith((".yaml", ".yml"))
                    else "application/json")

    status, reply = api(base, "POST", "/v1/sweeps", body, content_type)
    job = json.loads(reply)
    print(f"submitted {job['scenario']!r} as {job['id']} "
          f"({job['sweep']['points']} points)", flush=True)

    while job["state"] not in ("done", "failed", "cancelled"):
        time.sleep(args.poll_seconds)
        _, reply = api(base, "GET", f"/v1/sweeps/{job['id']}")
        job = json.loads(reply)
        sweep = job["sweep"]
        print(f"  {job['state']}: {sweep['computed']}/{sweep['points']} "
              f"points", flush=True)

    if job["state"] != "done":
        print(f"job {job['id']} ended {job['state']}: {job['error']}",
              file=sys.stderr)
        return 1

    _, report = api(base, "GET",
                    f"/v1/sweeps/{job['id']}/report?format={args.format}")
    print()
    print(report.decode(), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
