#!/usr/bin/env python
"""Prefetcher shootout: every engine vs every workload (Figure 10 style).

Compares next-line, stride, discontinuity, TIFS and PIF on miss
coverage and timing-model speedup over all six paper workloads.  This is
the example to start from when adding a new prefetch engine: implement
:class:`repro.prefetch.base.Prefetcher`, add it to ``engines()`` below,
and see where it lands.

The coverage matrix uses :func:`repro.sim.run_multi_prefetch_simulation`,
the single-pass multi-prefetcher engine: each workload's trace is walked
*once* for all five engines (plus one shared no-prefetch baseline)
instead of once per engine, with per-engine results bit-identical to
sequential :func:`repro.sim.run_prefetch_simulation` calls.  For the
full evaluation with process-level fan-out on top, see
``python -m repro.experiments --jobs N``.
"""

from dataclasses import replace

from repro import CacheConfig, PIFConfig, ProactiveInstructionFetch, SystemConfig
from repro.pipeline.tracegen import cached_trace
from repro.prefetch import make_prefetcher
from repro.sim import run_multi_prefetch_simulation, speedup_comparison
from repro.workloads.spec import WORKLOAD_NAMES

INSTRUCTIONS = 500_000
SEED = 42
CACHE = CacheConfig(capacity_bytes=32 * 1024, associativity=2)

def engines():
    return {
        "next-line": make_prefetcher("next-line"),
        "stride": make_prefetcher("stride"),
        "discont": make_prefetcher("discontinuity"),
        "tifs": make_prefetcher("tifs"),
        "pif": ProactiveInstructionFetch(PIFConfig(sab_window_regions=3)),
    }

def main() -> None:
    names = list(engines())
    print(f"{'workload':12s}  " + "  ".join(f"{n:>9s}" for n in names)
          + "   (miss coverage)")
    for workload in WORKLOAD_NAMES:
        bundle = cached_trace(workload, INSTRUCTIONS, SEED).bundle
        # One walk serves every engine (single-pass multi-prefetcher sim).
        sims = run_multi_prefetch_simulation(
            bundle, list(engines().values()), cache_config=CACHE,
            warmup_fraction=0.4)
        cells = [f"{sim.coverage():9.1%}" for sim in sims]
        print(f"{workload:12s}  " + "  ".join(cells))

    print()
    system = replace(SystemConfig(), l1i=CACHE)
    print(f"{'workload':12s}  " + "  ".join(f"{n:>9s}" for n in names)
          + f"  {'perfect':>9s}   (speedup)")
    for workload in WORKLOAD_NAMES:
        bundle = cached_trace(workload, INSTRUCTIONS, SEED).bundle
        comparison = speedup_comparison(bundle, engines(), system=system,
                                        warmup_fraction=0.4)
        cells = [f"{comparison[n]:9.3f}" for n in names]
        cells.append(f"{comparison['perfect']:9.3f}")
        print(f"{workload:12s}  " + "  ".join(cells))

if __name__ == "__main__":
    main()
